//! Generic "one map per bucket" hash-table adapter.
//!
//! Hashing a key to a bucket and delegating to any [`GuardedMap`] turns
//! every list in this library into a hash table — exactly how the paper
//! builds its tables ("one lazy linked list per bucket"). We use it for:
//!
//! * [`CouplingHashTable`] — lock-coupling chains (Herlihy & Shavit \[30\]);
//! * [`LockFreeHashTable`] — Harris chains (≈ Michael's table \[43\]);
//! * [`WaitFreeHashTable`] — wait-free chains: reproduces the paper's
//!   footnote 2, where the wait-free hash table is only ≈33 % slower than
//!   the blocking one because the chains have length ≈1 and the interposed
//!   objects cost a constant, not a traversal multiple.

use std::marker::PhantomData;

use csds_ebr::Guard;

use crate::hashtable::{bucket_count, bucket_of};
use crate::list::{CouplingList, HarrisList, WaitFreeList};
use crate::{key, GuardedMap, RmwFn, RmwOutcome};

/// Hash table delegating each bucket to an inner [`GuardedMap`].
///
/// Bucket heads are deliberately **not** cache-line padded: measured on the
/// `fig0_substrate` read-heavy run, padding each bucket to 128 B blew the
/// bucket array up 8× (mostly padding) and cost 13× in throughput at 1024
/// keys — capacity misses from the sparse array dwarf any adjacent-bucket
/// false sharing at load factor 1.
pub struct Bucketed<M, V> {
    buckets: Vec<M>,
    mask: usize,
    _pd: PhantomData<fn() -> V>,
}

impl<M, V> Bucketed<M, V>
where
    M: GuardedMap<V>,
    V: Clone + Send + Sync,
{
    /// Build a table of `bucket_count(capacity)` buckets, constructing each
    /// inner map with `make`.
    pub fn with_capacity_and(capacity: usize, make: impl Fn() -> M) -> Self {
        let n = bucket_count(capacity);
        Bucketed {
            buckets: (0..n).map(|_| make()).collect(),
            mask: n - 1,
            _pd: PhantomData,
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> &M {
        &self.buckets[bucket_of(key, self.mask)]
    }

    /// Number of buckets (diagnostics).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Guard-scoped `get`: clone-free reference valid for `'g`.
    pub fn get_in<'g>(&'g self, k: u64, guard: &'g Guard) -> Option<&'g V> {
        key::check_user_key(k);
        self.bucket(k).get_in(k, guard)
    }

    /// Guard-scoped membership test: delegates to the key's bucket so the
    /// inner map's native (possibly optimistic) `contains_in` is reached.
    pub fn contains_in(&self, k: u64, guard: &Guard) -> bool {
        key::check_user_key(k);
        self.bucket(k).contains_in(k, guard)
    }

    /// Guard-scoped `insert`.
    pub fn insert_in(&self, k: u64, value: V, guard: &Guard) -> bool {
        key::check_user_key(k);
        self.bucket(k).insert_in(k, value, guard)
    }

    /// Guard-scoped `remove`.
    pub fn remove_in(&self, k: u64, guard: &Guard) -> Option<V> {
        key::check_user_key(k);
        self.bucket(k).remove_in(k, guard)
    }

    /// Guard-scoped element count (one traversal under one guard).
    pub fn len_in(&self, guard: &Guard) -> usize {
        self.buckets.iter().map(|b| b.len_in(guard)).sum()
    }

    /// Guard-scoped emptiness: early-exits at the first non-empty bucket
    /// (each inner list early-exits at its first live node) instead of the
    /// default full count.
    pub fn is_empty_in(&self, guard: &Guard) -> bool {
        self.buckets.iter().all(|b| b.is_empty_in(guard))
    }

    /// Guard-scoped atomic closure RMW: delegates to the key's bucket,
    /// which provides the native implementation (and its linearization
    /// point).
    pub fn rmw_in<'g>(&'g self, k: u64, f: RmwFn<'_, V>, guard: &'g Guard) -> RmwOutcome<'g, V> {
        key::check_user_key(k);
        self.bucket(k).rmw_in(k, f, guard)
    }
}

impl<M, V> GuardedMap<V> for Bucketed<M, V>
where
    M: GuardedMap<V>,
    V: Clone + Send + Sync,
{
    fn get_in<'g>(&'g self, key: u64, guard: &'g Guard) -> Option<&'g V> {
        Bucketed::get_in(self, key, guard)
    }

    fn contains_in(&self, key: u64, guard: &Guard) -> bool {
        Bucketed::contains_in(self, key, guard)
    }

    fn insert_in(&self, key: u64, value: V, guard: &Guard) -> bool {
        Bucketed::insert_in(self, key, value, guard)
    }

    fn remove_in(&self, key: u64, guard: &Guard) -> Option<V> {
        Bucketed::remove_in(self, key, guard)
    }

    fn len_in(&self, guard: &Guard) -> usize {
        Bucketed::len_in(self, guard)
    }

    fn is_empty_in(&self, guard: &Guard) -> bool {
        Bucketed::is_empty_in(self, guard)
    }

    fn rmw_in<'g>(&'g self, key: u64, f: RmwFn<'_, V>, guard: &'g Guard) -> RmwOutcome<'g, V> {
        Bucketed::rmw_in(self, key, f, guard)
    }
}

/// Lock-coupling hash table \[30\]: hand-over-hand chains per bucket.
pub type CouplingHashTable<V> = Bucketed<CouplingList<V>, V>;

/// Lock-free hash table (Harris chains; ≈ Michael \[43\]).
pub type LockFreeHashTable<V> = Bucketed<HarrisList<V>, V>;

/// Wait-free hash table (wait-free chains; paper footnote 2).
pub type WaitFreeHashTable<V> = Bucketed<WaitFreeList<V>, V>;

impl<V: Clone + Send + Sync> CouplingHashTable<V> {
    /// Lock-coupling table sized for `capacity` at load factor 1.
    pub fn with_capacity(capacity: usize) -> Self {
        Bucketed::with_capacity_and(capacity, CouplingList::new)
    }
}

impl<V: Clone + Send + Sync> LockFreeHashTable<V> {
    /// Lock-free table sized for `capacity` at load factor 1.
    pub fn with_capacity(capacity: usize) -> Self {
        Bucketed::with_capacity_and(capacity, HarrisList::new)
    }
}

impl<V: Clone + Send + Sync> WaitFreeHashTable<V> {
    /// Wait-free table sized for `capacity` at load factor 1.
    pub fn with_capacity(capacity: usize) -> Self {
        Bucketed::with_capacity_and(capacity, WaitFreeList::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use std::sync::Arc;

    #[test]
    fn coupling_table_sequential_model() {
        testutil::sequential_model_check(CouplingHashTable::with_capacity(32), 3_000, 128);
    }

    #[test]
    fn lockfree_table_sequential_model() {
        testutil::sequential_model_check(LockFreeHashTable::with_capacity(32), 3_000, 128);
    }

    #[test]
    fn waitfree_table_sequential_model() {
        testutil::sequential_model_check(WaitFreeHashTable::with_capacity(32), 3_000, 128);
    }

    #[test]
    fn lockfree_table_concurrent() {
        testutil::concurrent_net_effect(
            Arc::new(LockFreeHashTable::with_capacity(32)),
            4,
            4_000,
            64,
        );
    }

    #[test]
    fn waitfree_table_concurrent() {
        testutil::concurrent_net_effect(
            Arc::new(WaitFreeHashTable::with_capacity(32)),
            4,
            2_500,
            64,
        );
    }

    #[test]
    fn bucket_counts() {
        let t = LockFreeHashTable::<u64>::with_capacity(100);
        assert_eq!(t.buckets(), 128);
    }
}
