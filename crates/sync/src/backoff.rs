//! Exponential backoff for spin loops.
//!
//! Pure spinning is the right call on a machine with a core per thread (the
//! paper's testbed); under multiprogramming it wastes the holder's quantum.
//! [`Backoff`] spins with `spin_loop` hints for a bounded number of rounds
//! and then starts yielding to the OS scheduler, which keeps every
//! experiment in this suite live on hosts of any core count.

/// Exponential spin-then-yield backoff.
///
/// ```
/// use csds_sync::Backoff;
/// let mut b = Backoff::new();
/// for _ in 0..20 { b.snooze(); }
/// assert!(b.is_yielding());
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Spin `2^SPIN_LIMIT` times at most before starting to yield.
    const SPIN_LIMIT: u32 = 7;

    /// Fresh backoff state (start of a wait).
    pub const fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Reset to the initial (pure spin) state.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Wait a little; successive calls wait exponentially longer, eventually
    /// yielding the CPU.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// True once the backoff has escalated to yielding.
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_yield() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_yielding());
        b.snooze(); // yields without panicking
        b.reset();
        assert!(!b.is_yielding());
    }
}
