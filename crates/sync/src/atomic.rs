//! The workspace's atomic seam.
//!
//! Every crate in the workspace imports its atomics from here instead of
//! `std::sync::atomic` (a lint test under `tests/` enforces it). Normally
//! this module is a zero-cost re-export of the `std` types. Built with the
//! `modelcheck` feature, it re-exports the `csds_modelcheck` shims instead,
//! so the *production* protocol code — OPTIK seqlocks, EBR pin/repin, the
//! Vyukov ring, the elastic table's migration — runs unmodified under the
//! exhaustive interleaving checker. Outside a model execution the shims pass
//! straight through to the real atomics, which is what keeps workspace-wide
//! test builds (where Cargo's feature unification turns `modelcheck` on for
//! every dependent) behaviourally identical.
//!
//! Two seam-aware building blocks ride along for protocol state that is
//! process-global in production but must be *execution-scoped* under the
//! checker (so no state leaks between explored interleavings):
//!
//! * [`LazyStatic`] — a lazily-initialised global (`OnceLock` semantics);
//!   under `modelcheck` each model execution gets a fresh instance. The
//!   initialiser must only construct values, not perform atomic operations.
//! * [`seam_thread_local!`] — a `thread_local!` stand-in whose per-model-
//!   thread values are dropped *inside* the scheduled region, so `Drop`
//!   impls that perform atomic operations (EBR's `Local`) are checked too.

#[cfg(not(feature = "modelcheck"))]
mod imp {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize,
    };

    /// Lazily-initialised global; `get` initialises on first use.
    /// (Execution-scoped under the `modelcheck` feature; see module docs.)
    pub struct LazyStatic<T: 'static> {
        init: fn() -> T,
        cell: std::sync::OnceLock<T>,
    }

    impl<T> LazyStatic<T> {
        pub const fn new(init: fn() -> T) -> Self {
            LazyStatic {
                init,
                cell: std::sync::OnceLock::new(),
            }
        }

        pub fn get(&'static self) -> &'static T {
            self.cell.get_or_init(self.init)
        }
    }

    /// `thread_local!` with a `.with(|v| ...)`-only interface (the subset
    /// the seam supports in both builds).
    #[macro_export]
    macro_rules! seam_thread_local {
        ($(#[$attr:meta])* $vis:vis static $N:ident: $T:ty = $init:expr $(;)?) => {
            ::std::thread_local! {
                $(#[$attr])* $vis static $N: $T = $init;
            }
        };
    }
}

#[cfg(feature = "modelcheck")]
mod imp {
    pub use csds_modelcheck::{
        fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize,
        McStatic as LazyStatic,
    };
    // `csds_modelcheck::mc_thread_local!` is re-exported below as
    // `seam_thread_local!`; its expansion resolves `$crate` to
    // `csds_modelcheck`, which every dependant links via this crate.
    pub use csds_modelcheck::mc_thread_local as seam_thread_local;
}

pub use imp::*;
pub use std::sync::atomic::Ordering;

// Make the macro addressable as `csds_sync::atomic::seam_thread_local!` in
// both builds (the `#[macro_export]` above lands it at the crate root).
#[cfg(not(feature = "modelcheck"))]
pub use crate::seam_thread_local;
