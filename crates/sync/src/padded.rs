//! Cache-line padding for hot shared state.
//!
//! [`CachePadded<T>`] aligns (and therefore sizes) `T` to 128 bytes: the
//! adjacent-line-prefetch pair on modern x86 and the native line size of
//! several ARM/POWER parts. Two `CachePadded` values never share a line, so
//! a writer of one cannot invalidate a reader of the other (no false
//! sharing).
//!
//! Padding policy in this workspace:
//!
//! * **standalone / global lock state is padded** — queue ends, per-bucket
//!   arrays, EBR participant slots, MCS queue nodes — because neighbouring
//!   hot words otherwise ping-pong whole lines between cores;
//! * **per-node embedded locks stay compact** ([`TasLock`](crate::TasLock)
//!   is one byte by design, §3.2 of the paper): a search structure has
//!   millions of nodes, and inflating every node to a cache line would cost
//!   far more in capacity misses than false sharing ever could. Structures
//!   choose padding at the use site via `CachePadded<Lock>`, which also
//!   implements [`RawMutex`].

use crate::RawMutex;

/// Pads and aligns a value to 128 bytes.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap, discarding the padding.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// A padded lock is a lock: structures can swap `L` for `CachePadded<L>`
/// wherever the lock state is standalone enough to deserve its own line.
impl<L: RawMutex> RawMutex for CachePadded<L> {
    fn new() -> Self {
        CachePadded::new(L::new())
    }

    #[inline]
    fn lock(&self) {
        self.value.lock();
    }

    #[inline]
    fn try_lock(&self) -> bool {
        self.value.try_lock()
    }

    #[inline]
    fn unlock(&self) {
        self.value.unlock();
    }

    fn is_locked(&self) -> bool {
        self.value.is_locked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TicketLock;

    #[test]
    fn layout_is_one_line_or_more() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        // Arrays of padded values put each element on its own line.
        let arr = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn padded_lock_is_a_raw_mutex() {
        let l: CachePadded<TicketLock> = RawMutex::new();
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        l.unlock();
    }
}
