//! OPTIK-style versioned lock (Guerraoui & Trigonakis, PPoPP'16 \[22\]).
//!
//! The lock word is a version counter: even = free, odd = locked. The
//! pattern that BST-TK builds on is *optimistic concurrency with version
//! validation*: an update parses the structure without synchronization,
//! records the versions of the nodes it will modify, and then acquires each
//! lock **only if its version is unchanged** ([`OptikLock::try_lock_version`]).
//! A failed acquisition means someone changed that neighborhood — the
//! operation restarts instead of waiting, which is why BST-TK's measured
//! lock-wait time is zero and its restart count is non-zero (paper §5.1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::{Backoff, RawMutex};

/// Versioned lock: even values mean unlocked, odd mean locked. Each
/// lock/unlock pair advances the version by 2, so a reader can detect *any*
/// intervening critical section by comparing versions.
pub struct OptikLock {
    version: AtomicU64,
}

impl OptikLock {
    /// Current version. Even = free. Use with [`try_lock_version`] to
    /// validate that the node is unchanged since it was parsed.
    ///
    /// [`try_lock_version`]: OptikLock::try_lock_version
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Acquire the lock only if the version still equals `seen` (which must
    /// be even, i.e. observed free). Returns `false` — without waiting — if
    /// the version moved or the lock is held.
    #[inline]
    pub fn try_lock_version(&self, seen: u64) -> bool {
        if seen & 1 == 1 {
            return false;
        }
        let ok = self
            .version
            .compare_exchange(seen, seen + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            csds_metrics::lock_acquire(false);
        }
        ok
    }

    /// True if `v` denotes a locked state.
    #[inline]
    pub fn version_is_locked(v: u64) -> bool {
        v & 1 == 1
    }
}

impl RawMutex for OptikLock {
    fn new() -> Self {
        OptikLock {
            version: AtomicU64::new(0),
        }
    }

    fn lock(&self) {
        // Fast path.
        let v = self.version.load(Ordering::Relaxed);
        if v & 1 == 0
            && self
                .version
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            csds_metrics::lock_acquire(false);
            return;
        }
        self.lock_slow();
    }

    #[inline]
    fn try_lock(&self) -> bool {
        let v = self.version.load(Ordering::Relaxed);
        v & 1 == 0 && self.try_lock_version(v)
    }

    #[inline]
    fn unlock(&self) {
        // Holder-only: version is odd; +1 makes it even and distinct from
        // every previously observed version.
        self.version.fetch_add(1, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        self.version.load(Ordering::Relaxed) & 1 == 1
    }
}

impl OptikLock {
    #[cold]
    fn lock_slow(&self) {
        let start = Instant::now();
        let mut backoff = Backoff::new();
        loop {
            let v = self.version.load(Ordering::Relaxed);
            if v & 1 == 0
                && self
                    .version
                    .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            backoff.snooze();
        }
        csds_metrics::lock_wait(start.elapsed().as_nanos() as u64);
        csds_metrics::lock_acquire(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_advances_by_two_per_critical_section() {
        let l = OptikLock::new();
        let v0 = l.version();
        l.lock();
        l.unlock();
        assert_eq!(l.version(), v0 + 2);
    }

    #[test]
    fn try_lock_version_detects_change() {
        let l = OptikLock::new();
        let seen = l.version();
        // Someone else runs a critical section.
        l.lock();
        l.unlock();
        assert!(!l.try_lock_version(seen), "stale version must be rejected");
        let fresh = l.version();
        assert!(l.try_lock_version(fresh));
        l.unlock();
    }

    #[test]
    fn try_lock_version_rejects_locked_observation() {
        let l = OptikLock::new();
        l.lock();
        let seen = l.version();
        assert!(OptikLock::version_is_locked(seen));
        assert!(!l.try_lock_version(seen));
        l.unlock();
    }
}
