//! OPTIK-style versioned lock (Guerraoui & Trigonakis, PPoPP'16 \[22\]).
//!
//! The lock word is a version counter: even = free, odd = locked. The
//! pattern that BST-TK builds on is *optimistic concurrency with version
//! validation*: an update parses the structure without synchronization,
//! records the versions of the nodes it will modify, and then acquires each
//! lock **only if its version is unchanged** ([`OptikLock::try_lock_version`]).
//! A failed acquisition means someone changed that neighborhood — the
//! operation restarts instead of waiting, which is why BST-TK's measured
//! lock-wait time is zero and its restart count is non-zero (paper §5.1).
//!
//! The same version word doubles as a **seqlock** for readers
//! ([`OptikLock::read_begin`] / [`OptikLock::read_validate`]): snapshot an
//! even version, read the protected data without synchronizing, then
//! re-check the version. An unchanged even version proves no writer's
//! critical section overlapped the read, so the data observed is a
//! consistent snapshot that linearizes at the `read_begin` load.
//!
//! # Memory-ordering audit
//!
//! Every path through this lock is annotated at the call site; the global
//! picture:
//!
//! * **Acquire is only ever needed on the access that wins the lock or
//!   closes a validated read.** The speculative pre-loads in `lock`,
//!   `try_lock` and `lock_slow` are `Relaxed` because they only *seed* the
//!   CAS comparand — a stale value makes the CAS fail (correctness
//!   unaffected); a successful CAS carries `Acquire` itself, which is the
//!   edge that synchronizes with the previous holder's `Release` unlock.
//! * [`version`]/[`read_begin`] load with `Acquire` so the *subsequent*
//!   unsynchronized reads of the protected data cannot be reordered before
//!   the snapshot, and so the snapshot observes everything published by
//!   the unlock it reads from.
//! * [`read_validate`] issues an `Acquire` **fence** before its `Relaxed`
//!   re-load: the fence orders the protected-data reads before the re-load,
//!   so a torn read (writer mutated after our loads) is caught because the
//!   writer must bump the version to odd *before* mutating (CAS in
//!   `try_lock_version`/`lock`) and to a new even value *after* (`Release`
//!   in `unlock`) — either bump makes the re-load differ from `seen`.
//! * `is_locked` is documented racy (assertions only) so `Relaxed` is fine.
//!
//! [`version`]: OptikLock::version
//! [`read_begin`]: OptikLock::read_begin
//! [`read_validate`]: OptikLock::read_validate

use crate::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

use crate::{Backoff, RawMutex};

/// Bounded retries for optimistic *read* fast paths before falling back to
/// a pessimistic (locked or unvalidated-but-correct) path.
pub const OPTIMISTIC_READ_RETRIES: usize = 3;

/// Bounded restarts for validate-then-lock *RMW* fast paths before falling
/// back to the pessimistic locked path.
pub const OPTIMISTIC_RMW_RETRIES: usize = 3;

/// Versioned lock: even values mean unlocked, odd mean locked. Each
/// lock/unlock pair advances the version by 2, so a reader can detect *any*
/// intervening critical section by comparing versions.
pub struct OptikLock {
    version: AtomicU64,
}

impl OptikLock {
    /// Current version. Even = free. Use with [`try_lock_version`] to
    /// validate that the node is unchanged since it was parsed.
    ///
    /// [`try_lock_version`]: OptikLock::try_lock_version
    #[inline]
    #[must_use = "a version snapshot is only meaningful if later validated or CASed against"]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Acquire the lock only if the version still equals `seen` (which must
    /// be even, i.e. observed free). Returns `false` — without waiting — if
    /// the version moved or the lock is held.
    #[inline]
    #[must_use = "ignoring the result proceeds without the lock; branch on it"]
    pub fn try_lock_version(&self, seen: u64) -> bool {
        if seen & 1 == 1 {
            return false;
        }
        let ok = self
            .version
            .compare_exchange(seen, seen + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            csds_metrics::lock_acquire(false);
        }
        ok
    }

    /// True if `v` denotes a locked state.
    #[inline]
    #[must_use]
    pub fn version_is_locked(v: u64) -> bool {
        v & 1 == 1
    }

    /// Begin an optimistic (seqlock-style) read: snapshot the current
    /// version. Returns `None` if a writer holds the lock right now (odd
    /// version) — the caller should retry or fall back rather than read
    /// data that is being mutated under it.
    ///
    /// The `Acquire` load synchronizes with the `Release` unlock of the
    /// last writer, so the protected data the caller reads next is at
    /// least as new as the snapshot, and none of those reads can hoist
    /// above it.
    #[inline]
    #[must_use = "an unused snapshot certifies nothing — thread it into read_validate"]
    pub fn read_begin(&self) -> Option<u64> {
        let v = self.version.load(Ordering::Acquire);
        if v & 1 == 0 {
            Some(v)
        } else {
            None
        }
    }

    /// Close an optimistic read begun at version `seen`: `true` iff no
    /// writer critical section overlapped the read, i.e. everything read
    /// since [`read_begin`] was a consistent snapshot.
    ///
    /// The `Acquire` *fence* keeps the caller's data reads ordered before
    /// the re-load. The re-load itself can be `Relaxed`: any writer bumps
    /// the version to odd (CAS, before mutating) and to a new even value
    /// (`Release` `fetch_add`, after mutating), so an overlapping or
    /// completed critical section always makes the re-load differ from
    /// `seen`. Equality is therefore proof of quiescence, whatever
    /// ordering the re-load uses.
    ///
    /// [`read_begin`]: OptikLock::read_begin
    #[inline]
    #[must_use = "a dropped validation result silently un-certifies the read — branch on it"]
    pub fn read_validate(&self, seen: u64) -> bool {
        fence(Ordering::Acquire);
        seen & 1 == 0 && self.version.load(Ordering::Relaxed) == seen
    }

    /// Run `f` as an optimistic read with up to [`OPTIMISTIC_READ_RETRIES`]
    /// validation attempts. Returns `Some(result)` from the first attempt
    /// whose snapshot validates, `None` if every attempt was torn by a
    /// concurrent writer — the caller then takes its pessimistic path
    /// (typically [`RawMutex::lock`]) and should record
    /// [`csds_metrics::optimistic_fallback`].
    ///
    /// `f` may observe mid-mutation state (that is the point of running
    /// unsynchronized), so it must be safe to run on torn data — in this
    /// library that means: only traverse EBR-protected pointers and make
    /// no decision until validation succeeds.
    ///
    /// Attempts and failed validations are recorded via
    /// [`csds_metrics::optimistic_attempt`] /
    /// [`csds_metrics::optimistic_failure`].
    #[inline]
    #[must_use = "None means every validation failed — the caller must take its pessimistic path"]
    pub fn optimistic_read<T>(&self, mut f: impl FnMut() -> T) -> Option<T> {
        for _ in 0..OPTIMISTIC_READ_RETRIES {
            csds_metrics::optimistic_attempt();
            let Some(seen) = self.read_begin() else {
                read_failed_slow();
                continue;
            };
            let out = f();
            if self.read_validate(seen) {
                return Some(out);
            }
            read_failed_slow();
        }
        None
    }
}

/// Failed-validation recording, out of line: writers are rare on the read
/// fast path, and keeping the recorder call (a thread-local access plus
/// counter stores) out of [`OptikLock::optimistic_read`]'s loop body keeps
/// the validated-success path lean.
#[cold]
#[inline(never)]
fn read_failed_slow() {
    csds_metrics::optimistic_failure();
}

impl RawMutex for OptikLock {
    fn new() -> Self {
        OptikLock {
            version: AtomicU64::new(0),
        }
    }

    fn lock(&self) {
        // Fast path. The pre-load is deliberately `Relaxed` (where
        // `version()` uses `Acquire`): it only seeds the CAS comparand. A
        // stale value fails the CAS and routes to the slow path; the
        // synchronizing edge with the previous holder's `Release` unlock
        // is the CAS's own `Acquire` success ordering. `version()` is
        // `Acquire` because *its* callers go on to read protected data
        // against the returned snapshot without any later CAS to supply
        // the ordering.
        let v = self.version.load(Ordering::Relaxed);
        if v & 1 == 0
            && self
                .version
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            csds_metrics::lock_acquire(false);
            return;
        }
        self.lock_slow();
    }

    #[inline]
    fn try_lock(&self) -> bool {
        // Relaxed for the same reason as `lock`'s fast path: the load only
        // seeds `try_lock_version`'s CAS, whose Acquire success ordering
        // does the synchronizing.
        let v = self.version.load(Ordering::Relaxed);
        v & 1 == 0 && self.try_lock_version(v)
    }

    #[inline]
    fn unlock(&self) {
        // Holder-only: version is odd; +1 makes it even and distinct from
        // every previously observed version.
        debug_assert!(
            self.version.load(Ordering::Relaxed) & 1 == 1,
            "OptikLock::unlock without holding the lock"
        );
        self.version.fetch_add(1, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        // Documented racy (assertions/validation only), so Relaxed.
        self.version.load(Ordering::Relaxed) & 1 == 1
    }
}

impl OptikLock {
    #[cold]
    fn lock_slow(&self) {
        let start = Instant::now();
        let mut backoff = Backoff::new();
        loop {
            let v = self.version.load(Ordering::Relaxed);
            if v & 1 == 0
                && self
                    .version
                    .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            backoff.snooze();
        }
        csds_metrics::lock_wait(start.elapsed().as_nanos() as u64);
        csds_metrics::lock_acquire(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_advances_by_two_per_critical_section() {
        let l = OptikLock::new();
        let v0 = l.version();
        l.lock();
        l.unlock();
        assert_eq!(l.version(), v0 + 2);
    }

    #[test]
    fn try_lock_version_detects_change() {
        let l = OptikLock::new();
        let seen = l.version();
        // Someone else runs a critical section.
        l.lock();
        l.unlock();
        assert!(!l.try_lock_version(seen), "stale version must be rejected");
        let fresh = l.version();
        assert!(l.try_lock_version(fresh));
        l.unlock();
    }

    #[test]
    fn try_lock_version_rejects_locked_observation() {
        let l = OptikLock::new();
        l.lock();
        let seen = l.version();
        assert!(OptikLock::version_is_locked(seen));
        assert!(!l.try_lock_version(seen));
        l.unlock();
    }

    /// The read-validate protocol, stepped through deterministically (no
    /// threads, no timing — miri/loom-shim friendly): every interleaving
    /// of one reader and one writer critical section, hand-ordered.
    #[test]
    fn read_validate_protocol_single_threaded_interleavings() {
        let l = OptikLock::new();

        // Quiescent read: begin → validate succeeds.
        let seen = l.read_begin().expect("free lock yields a snapshot");
        assert!(l.read_validate(seen));
        // Validation is not consuming: it can be re-run.
        assert!(l.read_validate(seen));

        // Reader begins, writer runs a whole critical section, reader
        // validates: must fail (the data may have changed under us).
        let seen = l.read_begin().unwrap();
        l.lock();
        l.unlock();
        assert!(!l.read_validate(seen), "overlapped write must invalidate");

        // Reader begins, writer acquires and is still inside (the
        // "paused between mutate and version-bump" window is anything
        // between lock and unlock): validation must fail, and a fresh
        // read_begin must refuse to start.
        let seen = l.read_begin().unwrap();
        l.lock();
        assert!(!l.read_validate(seen), "in-flight write must invalidate");
        assert!(
            l.read_begin().is_none(),
            "read must not begin while a writer is inside"
        );
        l.unlock();

        // An odd (locked) observation can never validate, even if the
        // version word happens to match.
        l.lock();
        let odd = l.version();
        assert!(!l.read_validate(odd));
        l.unlock();

        // After the writer finishes, reads proceed normally again.
        let seen = l.read_begin().unwrap();
        assert!(l.read_validate(seen));
    }

    #[test]
    fn optimistic_read_returns_value_and_counts_attempts() {
        let _ = csds_metrics::take_and_reset();
        let l = OptikLock::new();
        let mut calls = 0;
        let got = l.optimistic_read(|| {
            calls += 1;
            42u32
        });
        assert_eq!(got, Some(42));
        assert_eq!(calls, 1);
        let snap = csds_metrics::take_and_reset();
        assert_eq!(snap.optimistic_attempts, 1);
        assert_eq!(snap.optimistic_failures, 0);
        assert_eq!(snap.optimistic_fallbacks, 0);
    }

    #[test]
    fn optimistic_read_exhausts_retries_while_writer_holds_the_lock() {
        let _ = csds_metrics::take_and_reset();
        let l = OptikLock::new();
        l.lock();
        // Writer is "paused" inside its critical section; every optimistic
        // attempt must refuse to read and report failure.
        let mut calls = 0;
        let got = l.optimistic_read(|| {
            calls += 1;
        });
        assert_eq!(got, None, "held lock must exhaust retries");
        assert_eq!(calls, 0, "closure must not run on a locked snapshot");
        l.unlock();
        let snap = csds_metrics::take_and_reset();
        assert_eq!(snap.optimistic_attempts as usize, OPTIMISTIC_READ_RETRIES);
        assert_eq!(snap.optimistic_failures as usize, OPTIMISTIC_READ_RETRIES);
    }

    /// Cross-thread torn-read rejection at the lock level: a writer parks
    /// inside its critical section after mutating the protected value but
    /// before the version-restoring unlock; a reader that overlaps it must
    /// never validate a torn observation.
    #[test]
    fn read_validate_rejects_overlapping_writer_cross_thread() {
        use crate::atomic::{AtomicBool, AtomicU64};
        use std::sync::Arc;

        let lock = Arc::new(OptikLock::new());
        let data = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));

        // Reader snapshot taken strictly before the writer starts.
        let seen = lock.read_begin().unwrap();
        let before = data.load(Ordering::Relaxed);

        let writer = {
            let (lock, data, inside, release) = (
                Arc::clone(&lock),
                Arc::clone(&data),
                Arc::clone(&inside),
                Arc::clone(&release),
            );
            std::thread::spawn(move || {
                lock.lock();
                data.store(1, Ordering::Relaxed); // the "mutate" half
                inside.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                lock.unlock(); // the "version bump" half
            })
        };
        while !inside.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // The writer is paused between mutate and version bump. Whatever
        // the reader saw, validation must reject it now.
        let torn = data.load(Ordering::Relaxed);
        assert!(
            !lock.read_validate(seen),
            "snapshot {seen} (value {before}) must be rejected against torn value {torn}"
        );
        assert!(lock.read_begin().is_none());
        release.store(true, Ordering::Release);
        writer.join().unwrap();
        // And after the writer completes, the old snapshot is still stale.
        assert!(!lock.read_validate(seen));
        let fresh = lock.read_begin().unwrap();
        assert!(lock.read_validate(fresh));
    }
}
