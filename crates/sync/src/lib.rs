//! Spin locks built from atomics, as used by state-of-the-art blocking
//! concurrent search data structures.
//!
//! The paper (§3.2) uses **test-and-set** and **ticket** locks for all its
//! blocking structures, observing "no benefits from using more complex locks,
//! such as MCS locks, due to the low degree of contention for any particular
//! lock". We provide all of them (plus the OPTIK-style versioned trylock that
//! BST-TK relies on) so that claim is reproducible (`ablation_lock_kind`).
//!
//! Every lock is instrumented: acquisitions that do not succeed immediately
//! take a timed slow path and report the wait to [`csds_metrics::lock_wait`].
//! This is exactly the paper's measurement methodology — with ticket locks,
//! "once a thread has acquired its ticket, if it is not immediately its turn
//! to be served, we measure the time until this event occurs".
//!
//! Spin loops use bounded spinning with exponential backoff and then
//! `yield_now` (see [`Backoff`]), so the suite behaves under multiprogramming
//! (more worker threads than cores) — the very scenario §5.4 studies.

pub mod atomic;
pub mod backoff;
pub mod mcs;
pub mod mpsc_ring;
pub mod optik;
pub mod padded;
pub mod sharded_counter;
pub mod tas;
pub mod ticket;

pub use backoff::Backoff;
pub use mcs::McsLock;
pub use mpsc_ring::MpscRing;
pub use optik::{OptikLock, OPTIMISTIC_READ_RETRIES, OPTIMISTIC_RMW_RETRIES};
pub use padded::CachePadded;
pub use sharded_counter::ShardedCounter;
pub use tas::{TasLock, TtasLock};
pub use ticket::TicketLock;

/// Global switch for the optimistic (version-validated) fast paths in the
/// blocking structures. On by default; benches and A/B tests flip it with
/// [`set_optimistic_fast_paths`] to measure the locked baseline on the
/// same binary. Read once per operation — mid-operation flips only affect
/// subsequent operations.
///
/// Deliberately a raw `std` atomic, not the [`atomic`] seam: this is a test
/// configuration flag, not protocol state — shimming it would add a
/// meaningless scheduling point to every optimistic operation under the
/// model checker. (The seam lint allowlists this file for that reason.)
static OPTIMISTIC_FAST_PATHS: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(true);

/// Enable or disable the optimistic read/RMW fast paths process-wide.
pub fn set_optimistic_fast_paths(enabled: bool) {
    OPTIMISTIC_FAST_PATHS.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// Whether the optimistic read/RMW fast paths are enabled (default: yes).
#[inline]
pub fn optimistic_fast_paths() -> bool {
    OPTIMISTIC_FAST_PATHS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Run `f` with the optimistic fast paths forced to `enabled`, restoring
/// the previous setting afterwards (also on panic). Calls are serialized
/// through a process-wide mutex, so concurrent tests/bench arms that pin
/// the toggle in opposite directions cannot observe each other's window.
pub fn with_optimistic_fast_paths<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_optimistic_fast_paths(self.0);
        }
    }
    let _restore = Restore(optimistic_fast_paths());
    set_optimistic_fast_paths(enabled);
    f()
}

/// A raw mutual-exclusion primitive.
///
/// `unlock` is a safe function; the usual guard discipline is provided by
/// [`LockGuard`], and the data-structure code in `csds-core` only unlocks
/// through guards (or symmetric explicit paths in hand-over-hand traversals).
pub trait RawMutex: Send + Sync {
    /// A new, unlocked instance.
    fn new() -> Self;
    /// Acquire, spinning (with backoff + yield) until the lock is held.
    fn lock(&self);
    /// Try to acquire without waiting. Returns `true` on success.
    fn try_lock(&self) -> bool;
    /// Release. Must only be called by the current holder.
    fn unlock(&self);
    /// Whether the lock is currently held (racy; for assertions/validation).
    fn is_locked(&self) -> bool;
}

/// RAII guard for any [`RawMutex`]; created by [`lock_guard`] /
/// [`try_lock_guard`]. Entering a guard fires the delay-injection hook, so
/// the "unresponsive threads" experiment stalls threads *while holding locks*.
pub struct LockGuard<'a, L: RawMutex> {
    lock: &'a L,
}

impl<'a, L: RawMutex> LockGuard<'a, L> {
    /// Release early (identical to dropping the guard).
    pub fn unlock(self) {}
}

impl<'a, L: RawMutex> Drop for LockGuard<'a, L> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

/// Acquire `lock` and return a guard. Records acquisition metrics and runs
/// the critical-section delay-injection hook.
pub fn lock_guard<L: RawMutex>(lock: &L) -> LockGuard<'_, L> {
    lock.lock();
    csds_metrics::maybe_delay_in_cs();
    LockGuard { lock }
}

/// Try to acquire `lock`; on success return a guard (after running the
/// delay-injection hook).
pub fn try_lock_guard<L: RawMutex>(lock: &L) -> Option<LockGuard<'_, L>> {
    if lock.try_lock() {
        csds_metrics::maybe_delay_in_cs();
        Some(LockGuard { lock })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn hammer<L: RawMutex + 'static>() {
        const THREADS: usize = 4;
        // Miri executes every interleaved access interpretively; keep its
        // run inside the CI timebox while native runs keep full pressure.
        const ITERS: usize = if cfg!(miri) { 64 } else { 2_000 };
        let lock = Arc::new(L::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    let _g = lock_guard(&*lock);
                    // Non-atomic-looking increment made of two atomic halves:
                    // only mutual exclusion makes it correct.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), (THREADS * ITERS) as u64);
        assert!(!lock.is_locked());
    }

    #[test]
    fn tas_mutual_exclusion() {
        hammer::<TasLock>();
    }

    #[test]
    fn ttas_mutual_exclusion() {
        hammer::<TtasLock>();
    }

    #[test]
    fn ticket_mutual_exclusion() {
        hammer::<TicketLock>();
    }

    #[test]
    fn mcs_mutual_exclusion() {
        hammer::<McsLock>();
    }

    #[test]
    fn optik_mutual_exclusion() {
        hammer::<OptikLock>();
    }

    #[test]
    fn try_lock_fails_when_held() {
        fn check<L: RawMutex>() {
            let l = L::new();
            assert!(l.try_lock());
            assert!(l.is_locked());
            assert!(!l.try_lock());
            l.unlock();
            assert!(!l.is_locked());
            assert!(l.try_lock());
            l.unlock();
        }
        check::<TasLock>();
        check::<TtasLock>();
        check::<TicketLock>();
        check::<McsLock>();
        check::<OptikLock>();
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = TasLock::new();
        {
            let _g = lock_guard(&l);
            assert!(l.is_locked());
            assert!(try_lock_guard(&l).is_none());
        }
        assert!(!l.is_locked());
        assert!(try_lock_guard(&l).is_some());
    }

    #[test]
    #[cfg_attr(miri, ignore = "asserts on wall-clock wait times")]
    fn contended_wait_is_recorded() {
        let _ = csds_metrics::take_and_reset();
        let lock = Arc::new(TicketLock::new());
        lock.lock();
        let l2 = Arc::clone(&lock);
        let h = std::thread::spawn(move || {
            let _g = lock_guard(&*l2); // will wait
            csds_metrics::take_and_reset()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lock.unlock();
        let snap = h.join().unwrap();
        assert_eq!(snap.contended_acquires, 1);
        assert!(
            snap.lock_wait_ns >= 10_000_000,
            "waited {}ns",
            snap.lock_wait_ns
        );
    }
}
