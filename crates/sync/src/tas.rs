//! Test-and-set and test-and-test-and-set spin locks.
//!
//! A [`TasLock`] is a single byte — this matters because the lazy list and
//! the optimistic skiplist embed one lock *per node* (paper §3.2). The
//! slow path measures wait time from the first failed attempt until
//! acquisition and reports it to `csds-metrics`.

use crate::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::{Backoff, RawMutex};

/// Classic test-and-set spin lock (one byte of state).
pub struct TasLock {
    flag: AtomicBool,
}

impl RawMutex for TasLock {
    fn new() -> Self {
        TasLock {
            flag: AtomicBool::new(false),
        }
    }

    #[inline]
    fn lock(&self) {
        // Fast path: uncontended CAS.
        if self
            .flag
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            csds_metrics::lock_acquire(false);
            return;
        }
        self.lock_slow();
    }

    #[inline]
    fn try_lock(&self) -> bool {
        let ok = self
            .flag
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            csds_metrics::lock_acquire(false);
        }
        ok
    }

    #[inline]
    fn unlock(&self) {
        self.flag.store(false, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl TasLock {
    #[cold]
    fn lock_slow(&self) {
        let start = Instant::now();
        let mut backoff = Backoff::new();
        loop {
            // Wait until it looks free before hitting it with a CAS again
            // (avoids cache-line ping-pong).
            while self.flag.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            if self
                .flag
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        csds_metrics::lock_wait(start.elapsed().as_nanos() as u64);
        csds_metrics::lock_acquire(true);
    }
}

/// Test-and-test-and-set lock: identical to [`TasLock`] but reads before the
/// very first CAS as well, which is gentler under heavy contention.
pub struct TtasLock {
    flag: AtomicBool,
}

impl RawMutex for TtasLock {
    fn new() -> Self {
        TtasLock {
            flag: AtomicBool::new(false),
        }
    }

    #[inline]
    fn lock(&self) {
        if !self.flag.load(Ordering::Relaxed)
            && self
                .flag
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            csds_metrics::lock_acquire(false);
            return;
        }
        self.lock_slow();
    }

    #[inline]
    fn try_lock(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return false;
        }
        let ok = self
            .flag
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            csds_metrics::lock_acquire(false);
        }
        ok
    }

    #[inline]
    fn unlock(&self) {
        self.flag.store(false, Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl TtasLock {
    #[cold]
    fn lock_slow(&self) {
        let start = Instant::now();
        let mut backoff = Backoff::new();
        loop {
            while self.flag.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            if self
                .flag
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        csds_metrics::lock_wait(start.elapsed().as_nanos() as u64);
        csds_metrics::lock_acquire(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tas_is_one_byte() {
        assert_eq!(std::mem::size_of::<TasLock>(), 1);
    }

    #[test]
    fn lock_unlock_cycles() {
        let l = TasLock::new();
        for _ in 0..100 {
            l.lock();
            assert!(l.is_locked());
            l.unlock();
            assert!(!l.is_locked());
        }
    }

    #[test]
    fn ttas_lock_unlock_cycles() {
        let l = TtasLock::new();
        for _ in 0..100 {
            assert!(l.try_lock());
            l.unlock();
        }
    }
}
