//! Ticket lock — FIFO-fair spin lock.
//!
//! This is the lock the paper uses to *measure* waiting: "once a thread has
//! acquired its ticket, if it is not immediately its turn to be served, we
//! measure the time until this event occurs" (§5.1). The fast path (ticket ==
//! now-serving) records no time at all.

use crate::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use crate::{Backoff, RawMutex};

/// FIFO ticket lock (8 bytes of state).
pub struct TicketLock {
    next: AtomicU32,
    serving: AtomicU32,
}

impl RawMutex for TicketLock {
    fn new() -> Self {
        TicketLock {
            next: AtomicU32::new(0),
            serving: AtomicU32::new(0),
        }
    }

    #[inline]
    fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        if self.serving.load(Ordering::Acquire) == ticket {
            csds_metrics::lock_acquire(false);
            return;
        }
        self.wait_for_turn(ticket);
    }

    #[inline]
    fn try_lock(&self) -> bool {
        let serving = self.serving.load(Ordering::Relaxed);
        let next = self.next.load(Ordering::Relaxed);
        if serving != next {
            return false;
        }
        // Taking the lock = claiming ticket `next` while it is being served.
        let ok = self
            .next
            .compare_exchange(
                next,
                next.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok();
        if ok {
            csds_metrics::lock_acquire(false);
        }
        ok
    }

    #[inline]
    fn unlock(&self) {
        // Only the holder advances `serving`; a plain store is sufficient.
        let s = self.serving.load(Ordering::Relaxed);
        self.serving.store(s.wrapping_add(1), Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        self.serving.load(Ordering::Relaxed) != self.next.load(Ordering::Relaxed)
    }
}

impl TicketLock {
    #[cold]
    fn wait_for_turn(&self, ticket: u32) {
        let start = Instant::now();
        let mut backoff = Backoff::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
        csds_metrics::lock_wait(start.elapsed().as_nanos() as u64);
        csds_metrics::lock_acquire(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        // Thread A holds the lock; B then C queue up. B must acquire first.
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        lock.lock();
        let mut handles = Vec::new();
        for id in 0..2u32 {
            let lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                // Stagger queueing so ticket order is deterministic.
                std::thread::sleep(std::time::Duration::from_millis(20 * (id as u64 + 1)));
                lock.lock();
                order.lock().unwrap().push(id);
                lock.unlock();
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(80));
        lock.unlock();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(&*order.lock().unwrap(), &[0, 1]);
    }

    #[test]
    fn try_lock_only_when_free() {
        let l = TicketLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn wrapping_tickets() {
        let l = TicketLock::new();
        // Force the counters near the wrap point and make sure nothing breaks.
        l.next.store(u32::MAX, Ordering::Relaxed);
        l.serving.store(u32::MAX, Ordering::Relaxed);
        l.lock();
        assert!(l.is_locked());
        l.unlock();
        assert!(!l.is_locked());
        assert_eq!(l.serving.load(Ordering::Relaxed), 0);
    }
}
