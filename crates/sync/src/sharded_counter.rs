//! A striped (sharded) counter for write-hot, read-rare statistics.
//!
//! A single shared `AtomicU64` counter serializes every increment on one
//! cache line — under the paper's workloads that line ping-pongs between
//! every writing core and costs more than the operation being counted.
//! [`ShardedCounter`] splits the count across a power-of-two array of
//! [`CachePadded`] cells; each thread picks a home cell once (from a
//! process-wide registration counter) and increments only that cell, so the
//! common-case `add` is an uncontended `Relaxed` `fetch_add` on a line no
//! other thread writes.
//!
//! The price is the read side: [`ShardedCounter::sum`] folds all cells with
//! `Relaxed` loads and is only **approximately** current while writers are
//! active (it never tears, but concurrent deltas may or may not be
//! included). That is exactly the right trade for occupancy/threshold
//! checks — e.g. the elastic hash table's grow/shrink trigger — where the
//! consumer compares the sum against a threshold with generous hysteresis
//! and a slightly stale value only shifts *when* a resize starts, never
//! correctness.

use crate::atomic::{AtomicI64, AtomicUsize, LazyStatic, Ordering};

use crate::CachePadded;

/// Process-wide registration sequence; each thread's first `add` claims the
/// next index and keeps it for life, so a thread always hits the same cell
/// of every `ShardedCounter`. Seam-scoped ([`LazyStatic`] +
/// [`seam_thread_local!`](crate::atomic::seam_thread_local)) so that under
/// the model checker slot assignment restarts per execution — replays would
/// otherwise diverge as OS threads accumulate slot numbers across runs.
static NEXT_THREAD_SLOT: LazyStatic<AtomicUsize> = LazyStatic::new(|| AtomicUsize::new(0));

crate::atomic::seam_thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.get().fetch_add(1, Ordering::Relaxed);
}

/// A signed counter striped over cache-padded cells.
///
/// Writes are `Relaxed` increments of the calling thread's home cell;
/// [`sum`](ShardedCounter::sum) is a relaxed fold over all cells (see the
/// module docs for the staleness contract). Deltas may be negative; because
/// a decrement can land in a different cell than the increment it undoes,
/// individual cells — and transiently the sum — can go negative even when
/// the logical count never does. Consumers tracking a non-negative quantity
/// should clamp (`sum().max(0)`).
pub struct ShardedCounter {
    cells: Box<[CachePadded<AtomicI64>]>,
    mask: usize,
}

impl ShardedCounter {
    /// A counter striped over at least `cells` cells (rounded up to a power
    /// of two, minimum 1).
    pub fn new(cells: usize) -> Self {
        let n = cells.max(1).next_power_of_two();
        ShardedCounter {
            cells: (0..n)
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
            mask: n - 1,
        }
    }

    /// Number of cells (power of two).
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Add `delta` (possibly negative) to the calling thread's home cell.
    ///
    /// Returns the home cell's updated value — a purely local hint (one
    /// thread's share of the total, not the sum), useful for amortizing
    /// expensive work behind a cheap local milestone (e.g. "re-check the
    /// threshold only when my cell crosses a multiple of K") without
    /// touching any other thread's cache line.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        let slot = THREAD_SLOT.with(|s| *s);
        self.cells[slot & self.mask].fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// `add(1)`.
    #[inline]
    pub fn incr(&self) -> i64 {
        self.add(1)
    }

    /// `add(-1)`.
    #[inline]
    pub fn decr(&self) -> i64 {
        self.add(-1)
    }

    /// Relaxed fold of all cells: exact once writers are quiescent,
    /// approximate (never torn) while they are not.
    pub fn sum(&self) -> i64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCounter")
            .field("cells", &self.cells.len())
            .field("sum", &self.sum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cell_count_rounds_to_power_of_two() {
        assert_eq!(ShardedCounter::new(0).cells(), 1);
        assert_eq!(ShardedCounter::new(1).cells(), 1);
        assert_eq!(ShardedCounter::new(3).cells(), 4);
        assert_eq!(ShardedCounter::new(8).cells(), 8);
    }

    #[test]
    fn sequential_adds_sum_exactly() {
        let c = ShardedCounter::new(4);
        for i in 1..=100i64 {
            c.add(i);
        }
        assert_eq!(c.sum(), 5050);
        c.add(-5050);
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn add_returns_the_home_cell_value() {
        // Single-threaded, so every delta lands in the same cell and the
        // returned local value tracks the running total exactly.
        let c = ShardedCounter::new(4);
        assert_eq!(c.incr(), 1);
        assert_eq!(c.add(9), 10);
        assert_eq!(c.decr(), 9);
        assert_eq!(c.add(-19), -10);
    }

    #[test]
    fn negative_balances_cancel() {
        let c = ShardedCounter::new(8);
        for _ in 0..1000 {
            c.incr();
        }
        for _ in 0..1000 {
            c.decr();
        }
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        const THREADS: usize = 8;
        const PER_THREAD: i64 = 50_000;
        let c = Arc::new(ShardedCounter::new(4));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.incr();
                }
                for _ in 0..PER_THREAD / 2 {
                    c.decr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), THREADS as i64 * (PER_THREAD - PER_THREAD / 2));
    }

    #[test]
    fn cells_are_cache_padded() {
        let c = ShardedCounter::new(2);
        let a = &*c.cells[0] as *const AtomicI64 as usize;
        let b = &*c.cells[1] as *const AtomicI64 as usize;
        assert!(b.abs_diff(a) >= 128, "cells share a cache line");
    }
}
