//! A bounded multi-producer ring buffer with cache-padded endpoints — the
//! submission queue of the `csds_service` async front-end.
//!
//! The design is the classic sequence-stamped bounded queue (Vyukov): every
//! slot carries a sequence number that encodes, relative to the endpoint
//! counters, whether the slot is empty, full, or in transit. Producers claim
//! slots with one CAS on the tail; the consumer releases them with plain
//! loads and one CAS on the head. Capacity is fixed at construction, so a
//! full ring is **backpressure**: [`MpscRing::try_push`] hands the value
//! back instead of blocking or allocating.
//!
//! The two endpoint counters live on their own cache lines
//! ([`CachePadded`]): producers hammer the tail, the consumer hammers the
//! head, and neither invalidates the other's line except through the slots
//! themselves.
//!
//! The implementation is safe for multiple consumers too (the head is
//! CAS-claimed), but the intended shape — and the only one the service
//! uses — is many producers, one draining core worker.

use crate::atomic::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

use crate::CachePadded;

/// One ring slot: `seq` encodes the slot's state relative to the endpoint
/// counters (see [`MpscRing`]); `val` is live iff a producer has stamped the
/// slot full and no consumer has released it yet.
struct Slot<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded, lock-free, sequence-stamped MPSC ring. See the [module
/// docs](self).
pub struct MpscRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next position producers will claim.
    tail: CachePadded<AtomicUsize>,
    /// Next position the consumer will release.
    head: CachePadded<AtomicUsize>,
}

// SAFETY: values move in from producer threads and out on the consumer
// thread, so T must be Send; the ring itself synchronizes all slot access
// through the seq stamps (Release publish / Acquire observe).
unsafe impl<T: Send> Send for MpscRing<T> {}
unsafe impl<T: Send> Sync for MpscRing<T> {}

impl<T> MpscRing<T> {
    /// A ring holding at most `capacity` elements (rounded up to a power of
    /// two, minimum 2).
    ///
    /// The minimum is 2, not 1: with a single slot the stamp for "free for
    /// the producer's next lap" (`seq == pos`, at `pos = 1`) coincides with
    /// "published, awaiting the consumer" (`seq == pos + 1`, at `pos = 0`),
    /// so a second push would claim — and overwrite — a slot the consumer
    /// has not drained. Found by the `csds_modelcheck` ring model.
    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.max(2).next_power_of_two();
        MpscRing {
            slots: (0..n)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    val: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: n - 1,
            tail: CachePadded::new(AtomicUsize::new(0)),
            head: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Maximum number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate occupancy (racy under concurrency; exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Whether the ring is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt to enqueue `value`. On a full ring the value is handed back
    /// immediately — this is the service's backpressure signal, so the
    /// caller decides whether to spin, shed, or report upstream.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Slot empty at our position: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this producer exclusive
                        // ownership of the slot until the seq store below.
                        unsafe { (*slot.val.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                // The slot still holds an element from one lap ago: full.
                return Err(value);
            } else {
                // Another producer claimed this position; chase the tail.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue one element, or `None` if the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the producer's Release store of `seq`
                        // published the write; the CAS made us the unique
                        // consumer of this slot for this lap.
                        let value = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                // Slot not yet published at this lap: empty (or a producer
                // is mid-publish; treating it as empty is the non-blocking
                // choice).
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain up to `max` elements into `out`; returns how many were moved.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        // Exclusive access: pop out whatever is still queued so the
        // elements' destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_producer() {
        let r: MpscRing<u64> = MpscRing::with_capacity(8);
        assert_eq!(r.capacity(), 8);
        for i in 0..8 {
            assert!(r.try_push(i).is_ok());
        }
        assert_eq!(r.len(), 8);
        // Full ring hands the value back.
        assert_eq!(r.try_push(99), Err(99));
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
        // Wrap around a few laps.
        for lap in 0..5u64 {
            for i in 0..8 {
                assert!(r.try_push(lap * 100 + i).is_ok());
            }
            for i in 0..8 {
                assert_eq!(r.pop(), Some(lap * 100 + i));
            }
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        // Minimum 2: one slot cannot distinguish "free next lap" from
        // "published, undrained" (see with_capacity).
        assert_eq!(MpscRing::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(MpscRing::<u8>::with_capacity(1).capacity(), 2);
        assert_eq!(MpscRing::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(MpscRing::<u8>::with_capacity(1000).capacity(), 1024);
    }

    #[test]
    fn batch_drain() {
        let r: MpscRing<u64> = MpscRing::with_capacity(16);
        for i in 0..10 {
            r.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(r.pop_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(r.pop_batch(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
        assert_eq!(r.pop_batch(&mut out, 100), 0);
    }

    #[test]
    fn concurrent_producers_deliver_everything_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = if cfg!(miri) { 200 } else { 20_000 };
        let r: Arc<MpscRing<u64>> = Arc::new(MpscRing::with_capacity(64));
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let r = Arc::clone(&r);
            producers.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = p * PER_PRODUCER + i;
                    loop {
                        match r.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        // Single consumer: collect everything, check the multiset and the
        // per-producer FIFO order.
        let mut seen = vec![false; (PRODUCERS * PER_PRODUCER) as usize];
        let mut last: Vec<Option<u64>> = vec![None; PRODUCERS as usize];
        let mut got = 0u64;
        while got < PRODUCERS * PER_PRODUCER {
            if let Some(v) = r.pop() {
                assert!(!seen[v as usize], "duplicate delivery of {v}");
                seen[v as usize] = true;
                let p = (v / PER_PRODUCER) as usize;
                assert!(
                    last[p].map_or(true, |prev| prev < v),
                    "producer {p} reordered"
                );
                last[p] = Some(v);
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for t in producers {
            t.join().unwrap();
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn drop_runs_destructors_of_queued_elements() {
        let payload = Arc::new(());
        {
            let r: MpscRing<Arc<()>> = MpscRing::with_capacity(8);
            for _ in 0..5 {
                r.try_push(Arc::clone(&payload)).unwrap();
            }
            assert_eq!(Arc::strong_count(&payload), 6);
            drop(r);
        }
        assert_eq!(Arc::strong_count(&payload), 1);
    }
}
