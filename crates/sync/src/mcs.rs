//! MCS queue lock.
//!
//! Each waiter spins on its *own* queue node, so the lock generates no
//! global cache traffic under contention. The paper finds MCS unnecessary
//! for CSDSs ("no benefits ... due to the low degree of contention for any
//! particular lock", §3.2); we include it so that finding is reproducible
//! (`ablations` bench).
//!
//! The textbook MCS interface threads a queue node through `lock`/`unlock`.
//! To satisfy the uniform [`RawMutex`] interface the lock keeps a per-thread
//! pool of queue nodes and stashes the holder's node in the lock itself;
//! only the holder touches that slot, so a relaxed store suffices.

use crate::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::cell::RefCell;
use std::ptr;
use std::time::Instant;

use crate::{Backoff, RawMutex};

/// A waiter's spin cell. Cache-line padded: the whole point of MCS is that
/// each waiter spins on private state, which only holds if pooled nodes of
/// different waiters never share a line.
#[repr(align(128))]
struct QNode {
    locked: AtomicBool,
    next: AtomicPtr<QNode>,
}

impl QNode {
    fn new() -> Box<QNode> {
        Box::new(QNode {
            locked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }
}

thread_local! {
    // Pool of queue nodes for this thread. A thread can hold several MCS
    // locks at once (hand-over-hand traversals), so this is a stack, not a
    // single slot. The nodes must be boxed: their addresses are published
    // into the lock's queue and have to stay stable while pooled.
    #[allow(clippy::vec_box)]
    static NODE_POOL: RefCell<Vec<Box<QNode>>> = const { RefCell::new(Vec::new()) };
}

fn pool_pop() -> Box<QNode> {
    NODE_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(QNode::new)
}

fn pool_push(node: Box<QNode>) {
    NODE_POOL.with(|p| p.borrow_mut().push(node));
}

/// Mellor-Crummey–Scott queue lock.
///
/// `tail` (swapped by every arriving waiter) lives on its own cache line,
/// away from `owner` (touched only by the holder), so enqueue traffic never
/// invalidates the holder's line.
pub struct McsLock {
    tail: crate::CachePadded<AtomicPtr<QNode>>,
    /// Queue node of the current holder; written only by the holder.
    owner: AtomicPtr<QNode>,
}

impl RawMutex for McsLock {
    fn new() -> Self {
        McsLock {
            tail: crate::CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            owner: AtomicPtr::new(ptr::null_mut()),
        }
    }

    fn lock(&self) {
        let node = Box::into_raw(pool_pop());
        // SAFETY: `node` is freshly owned by us; fields reset before enqueue.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if pred.is_null() {
            self.owner.store(node, Ordering::Relaxed);
            csds_metrics::lock_acquire(false);
            return;
        }
        // SAFETY: `pred` stays valid until its owner dequeues, which cannot
        // happen before it observes our `next` link and hands the lock over.
        unsafe {
            (*pred).next.store(node, Ordering::Release);
        }
        let start = Instant::now();
        let mut backoff = Backoff::new();
        // SAFETY: we own `node` until we release the lock.
        unsafe {
            while (*node).locked.load(Ordering::Acquire) {
                backoff.snooze();
            }
        }
        self.owner.store(node, Ordering::Relaxed);
        csds_metrics::lock_wait(start.elapsed().as_nanos() as u64);
        csds_metrics::lock_acquire(true);
    }

    fn try_lock(&self) -> bool {
        if !self.tail.load(Ordering::Relaxed).is_null() {
            return false;
        }
        let node = Box::into_raw(pool_pop());
        // SAFETY: freshly owned node, reset before publication.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        match self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => {
                self.owner.store(node, Ordering::Relaxed);
                csds_metrics::lock_acquire(false);
                true
            }
            Err(_) => {
                // SAFETY: node was never published; reclaim it.
                pool_push(unsafe { Box::from_raw(node) });
                false
            }
        }
    }

    fn unlock(&self) {
        let node = self.owner.load(Ordering::Relaxed);
        debug_assert!(!node.is_null(), "unlock without holding McsLock");
        // SAFETY: `node` is the holder's node; we are the holder.
        unsafe {
            let mut next = (*node).next.load(Ordering::Acquire);
            if next.is_null() {
                // No known successor: try to swing tail back to null.
                if self
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    pool_push(Box::from_raw(node));
                    return;
                }
                // A successor is enqueueing; wait for its link to appear.
                let mut backoff = Backoff::new();
                loop {
                    next = (*node).next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    backoff.snooze();
                }
            }
            (*next).locked.store(false, Ordering::Release);
            pool_push(Box::from_raw(node));
        }
    }

    fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn handoff_between_threads() {
        let lock = Arc::new(McsLock::new());
        lock.lock();
        let l2 = Arc::clone(&lock);
        let h = std::thread::spawn(move || {
            l2.lock();
            l2.unlock();
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        lock.unlock();
        h.join().unwrap();
        assert!(!lock.is_locked());
    }

    #[test]
    fn reentrant_pool_supports_two_locks() {
        // A thread holding two MCS locks simultaneously must get two distinct
        // queue nodes from the pool.
        let a = McsLock::new();
        let b = McsLock::new();
        a.lock();
        b.lock();
        assert!(a.is_locked() && b.is_locked());
        b.unlock();
        a.unlock();
        assert!(!a.is_locked() && !b.is_locked());
    }
}
