//! Regression test for the worker-park reclamation hazard (PR 6 bug
//! class, service edition).
//!
//! The hazard: a worker that parks while holding EBR state stalls
//! reclamation process-wide. Two ways the namespace refactor could have
//! re-introduced it:
//!
//! * keeping the map session (a pin) across the park — a parked-but-live
//!   worker at an old epoch blocks every epoch advance, so no thread can
//!   ever collect;
//! * keeping `Arc`s to tenant tables in the routing cache across the park —
//!   a retired tenant's memory stays anchored for as long as the worker
//!   sleeps, even though the directory no longer references it.
//!
//! The worker loop therefore drops the session *and* clears the routing
//! cache before every park, and runs its tenant sweep under a fresh
//! short-lived pin. This test drives a service through warm-up → tenant
//! retirement → idle, then proves from the outside that (a) an
//! idle-but-running service leaves no participant pinned, (b) deferred
//! garbage — including the retired tenant tables — drains while the
//! service sleeps, and (c) an external thread's churn still advances the
//! epoch and never trips the stall watchdog.

use std::sync::Arc;
use std::time::{Duration, Instant};

use csds_core::{hashtable::LazyHashTable, GuardedMap};
use csds_ebr::{health, pin, set_watchdog_threshold, Atomic};
use csds_service::{block_on, Service, ServiceConfig};

#[test]
fn parked_service_neither_pins_the_epoch_nor_anchors_retired_tenants() {
    // Fresh thread → fresh thread-local metrics recorder for the churn
    // assertions at the end.
    std::thread::spawn(|| {
        let _ = csds_metrics::take_and_reset();
        set_watchdog_threshold(512);

        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
        let svc = Service::start(
            map,
            ServiceConfig {
                cores: 2,
                ring_capacity: 64,
                max_batch: 16,
                ..ServiceConfig::default()
            },
        );
        let client = svc.client();

        // Warm the workers' routing caches: traffic on the default map and
        // on eight tenants, then empty every tenant so the idle sweeps
        // retire them all.
        for k in 0..64u64 {
            assert!(block_on(client.insert(k, k).unwrap()).unwrap().inserted());
        }
        for ns in 1..=8u64 {
            let tenant = client.namespace(ns);
            for k in 0..64u64 {
                assert!(block_on(tenant.insert(k, k).unwrap()).unwrap().inserted());
            }
            for k in 0..64u64 {
                assert!(block_on(tenant.remove(k).unwrap())
                    .unwrap()
                    .value()
                    .is_some());
            }
        }

        // (a) every empty tenant is retired by the workers' pre-park sweeps
        // while the service keeps running.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let counts = svc.namespace_counts();
            if counts.retired == 8 {
                assert_eq!(counts.live, 0, "retired tenants still in the directory");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "idle workers never retired the emptied tenants: {counts:?}"
            );
            std::thread::yield_now();
        }

        // (b) with the service idle-but-running, no worker may stay pinned:
        // workers wake briefly on their park timeout, so poll until an
        // all-unpinned instant is observed.
        let deadline = Instant::now() + Duration::from_secs(30);
        while health().pinned_participants != 0 {
            assert!(
                Instant::now() < deadline,
                "a parked worker is still pinned: {:?}",
                health()
            );
            std::thread::yield_now();
        }

        // ...and the garbage deferred so far — tenant tables, directory
        // nodes, map nodes — must be collectable from this thread, which it
        // cannot be if any parked worker anchors an old epoch.
        let deadline = Instant::now() + Duration::from_secs(30);
        while health().garbage_items > 64 {
            pin().flush();
            assert!(
                Instant::now() < deadline,
                "garbage not draining while the service idles: {:?}",
                health()
            );
            std::thread::yield_now();
        }

        // (c) external healthy churn keeps collecting at full speed next to
        // the parked workers, without a single watchdog event.
        for i in 0..2_000usize {
            let g = pin();
            let slot = Atomic::new(i as u64);
            let s = slot.load(&g);
            // SAFETY: freshly allocated, unlinked, retired exactly once;
            // `Atomic` has no drop glue.
            unsafe { g.defer_drop(s) };
            drop(g);
        }
        let snap = csds_metrics::take_and_reset();
        assert_eq!(
            snap.ebr_stall_events, 0,
            "idle service must not starve an external thread's reclamation"
        );
        assert!(
            snap.epoch_advances > 0,
            "epoch frozen while the service idles — a parked worker is pinned"
        );
        assert!(snap.ebr_collects > 0, "no collection despite healthy churn");

        svc.shutdown();
    })
    .join()
    .unwrap();
}
