//! `csds_service` — an asynchronous request front-end over any
//! [`GuardedMap`]: the ROADMAP's "async front-end on top of
//! `ConcurrentMap`", built for the paper's service scenario.
//!
//! The paper measures structures from a **closed loop**: every worker
//! thread issues an operation, waits for it, issues the next. Real services
//! are **open-loop**: requests arrive on sockets at their own rate and are
//! executed by a small pool of cores, each running many requests per
//! scheduling quantum. This crate provides that shape:
//!
//! ```text
//!  clients (any thread)            core workers (fixed pool)
//!  ───────────────────             ─────────────────────────
//!  client.get(k) ──┐                ┌───────────────────────┐
//!  client.insert ──┼─► MpscRing ──► │ worker 0: MapHandle   │──► map
//!  submit_batch ───┘   (bounded,    │  repin once per batch │
//!        │              per core)   │  drain ≤ max_batch    │
//!        ▼                          └───────────────────────┘
//!   Completion futures ◄── oneshot ──── reply per request
//! ```
//!
//! * **Namespaces** — the front-end is multi-tenant: every request names a
//!   [`NamespaceId`] (keyspace). Namespace [`DEFAULT_NAMESPACE`] (0) is the
//!   map the service was started over; every other namespace is a
//!   tenant-scale [`csds_elastic::ElasticHashTable`] created **lazily on
//!   first operation** in a lock-free namespace directory (an elastic table
//!   *of* tables). Idle namespaces are shrunk back to their one-bucket
//!   floor and, once empty, unlinked and retired through `csds_ebr` — so a
//!   platform cycling through millions of keyspaces only ever pays for the
//!   live ones. See [`ServiceClient::namespace`] and
//!   [`Service::namespace_counts`].
//! * **Routing** — hash(namespace) then hash(key): a non-default namespace
//!   routes **by namespace** to a core, so one worker owns a tenant's whole
//!   lifecycle (creation, every op in submission order, retirement) and no
//!   cross-core create/retire races exist by construction. The default
//!   namespace keeps per-key routing, so the single-map service scales
//!   across all cores exactly as before: all operations on one key execute
//!   on one worker in submission order (per-client-per-key FIFO), and a hot
//!   core's cache holds its keys' nodes.
//! * **Quotas** — [`ServiceConfig::namespace_quota`] bounds each tenant's
//!   entry count. A submission that would grow a full tenant is rejected at
//!   admission with [`ServiceError::Busy`] and the operation handed back in
//!   [`Rejected::op`] (the same backpressure contract as a full ring), and
//!   ticks the workspace `quota_rejects` counter / `QuotaReject` trace
//!   event. The check is admission-time, so it is exact for the
//!   single-client case and bounded-stale (by at most one ring of in-flight
//!   growth) under concurrency.
//! * **Batching** — each worker owns one [`MapHandle`] and re-validates its
//!   guard **once per drained batch** rather than per operation, amortizing
//!   `Guard::repin` the way PathCAS amortizes validation: the mid-ground
//!   between pin-per-op and a never-refreshed (reclamation-stalling) pin.
//!   Workers drop the handle before parking, so an idle core never holds
//!   the epoch back — the library's own session discipline, applied.
//! * **Adaptive batching** — the per-repin drain depth is dynamic: it
//!   doubles (up to [`ServiceConfig::max_batch`]) while batches run full
//!   with a backlog behind them, and decays back to a small floor when the
//!   ring runs cold, so a hot core amortizes harder while a cold core
//!   re-validates promptly and parks sooner (after one brief spin to catch
//!   a refilling burst). The chosen depth is exported as
//!   [`CoreStats::batch_target`] / [`CoreStats::batch_target_max`].
//! * **Compound operations** — [`OpKind::Upsert`], [`OpKind::CompareSwap`]
//!   and [`OpKind::FetchAdd`] ride the same rings and execute through the
//!   map's native `upsert_in` / `compare_swap_in` / `rmw_in`, so a counter
//!   bump or a conditional write is one round trip with the same
//!   exactly-once drain guarantees as the basic vocabulary.
//! * **Backpressure** — submission rings are bounded
//!   ([`csds_sync::MpscRing`]); a full ring hands the operation back
//!   ([`ServiceError::Busy`] from [`ServiceClient::try_submit`]) or makes
//!   the blocking [`ServiceClient::submit`] spin with [`Backoff`] until
//!   space frees up.
//! * **Graceful shutdown** — [`Service::shutdown`] stops intake
//!   ([`ServiceError::ShuttingDown`]) and workers drain every already
//!   accepted request before exiting, so accepted operations always
//!   execute exactly once. If a request could somehow be dropped
//!   unexecuted, its [`Completion`] resolves to
//!   [`ServiceError::Disconnected`] rather than hanging.
//! * **Observability** — per-core [`CoreStats`]: ops, batches, batch-size
//!   and queue-depth maxima, and log₂ histograms
//!   ([`csds_metrics::LogHistogram`]) of batch sizes and
//!   submission-to-completion latency. Each worker seqlock-publishes its
//!   stats on an amortized cadence, so [`Service::stats_now`] /
//!   [`ServiceClient::stats_now`] return a consistent **live** snapshot
//!   mid-run (`repro watch` builds on this); rejected submissions tick the
//!   workspace-wide `service_busy` counter and emit a `ServiceBusy` trace
//!   event tagged with the saturated core.
//!
//! There is no async runtime in this offline workspace, so the future
//! machinery is hand-rolled in std: [`Completion`] is a
//! plain [`std::future::Future`] and [`block_on`] is a thread-parking
//! executor for examples, tests and closed-loop comparisons.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use csds_core::hashtable::LazyHashTable;
//! use csds_core::GuardedMap;
//! use csds_service::{block_on, OpKind, Service, ServiceConfig};
//!
//! let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
//! let service = Service::start(map, ServiceConfig { cores: 2, ..ServiceConfig::default() });
//! let client = service.client();
//!
//! // Single ops: a Completion future per request.
//! assert!(block_on(client.insert(7, 700).unwrap()).unwrap().inserted());
//! assert_eq!(client.get(7).unwrap().wait().unwrap().value(), Some(700));
//!
//! // Pipelined burst: submit the whole batch, then await the replies.
//! let batch = client
//!     .submit_batch((100..116).map(|k| (k, OpKind::Insert(k * 10))))
//!     .unwrap();
//! for c in batch {
//!     assert!(c.wait().unwrap().inserted());
//! }
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.aggregate().ops, 18);
//! ```

use csds_sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use csds_core::{check_user_key, CasOutcome, GuardedMap, MapHandle};
use csds_ebr::Guard;
use csds_elastic::ElasticHashTable;
use csds_metrics::registry::SeqSlot;
use csds_metrics::LogHistogram;
use csds_sync::{Backoff, CachePadded, MpscRing};

mod oneshot;

pub use oneshot::{block_on, Completion};

/// Identifies one tenant keyspace served by the front-end.
pub type NamespaceId = u64;

/// The namespace the service was started over: the `Arc<M>` map handed to
/// [`Service::start`]. It is never lazily created nor retired, and keeps
/// the original per-key core routing — a single-tenant deployment is just a
/// service that only ever touches this namespace.
pub const DEFAULT_NAMESPACE: NamespaceId = 0;

/// Value types the service can serve [`OpKind::FetchAdd`] against: a
/// round-trip to and from `u64` so a worker can execute the counter RMW
/// generically (`new = from_u64(to_u64(cur) + delta)`, with an absent key
/// treated as 0).
///
/// Workers execute every [`OpKind`] variant generically, so `Service<V>`
/// requires `V: PartialEq + FetchAddValue` even for clients that never
/// submit a `CompareSwap` or `FetchAdd` — a deliberate trade against
/// per-op boxing or a second worker code path. Non-numeric value types
/// implement this with whatever counter reading makes sense for them (or
/// `0` if `FetchAdd` is never routed their way).
pub trait FetchAddValue {
    /// Build a value from a counter reading.
    fn from_u64(x: u64) -> Self;
    /// Read the value as a counter.
    fn to_u64(&self) -> u64;
}

macro_rules! impl_fetch_add_value {
    ($($t:ty),*) => {$(
        impl FetchAddValue for $t {
            fn from_u64(x: u64) -> Self {
                x as $t
            }
            fn to_u64(&self) -> u64 {
                *self as u64
            }
        }
    )*};
}

impl_fetch_add_value!(u64, u32, u16, u8, usize, i64, i32);

/// Why a submission was rejected or a completion failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The service is shutting (or shut) down; the operation was **not**
    /// enqueued and will not execute.
    ShuttingDown,
    /// The target core's submission ring is full right now
    /// ([`ServiceClient::try_submit`] only — the blocking paths spin
    /// instead). The operation was not enqueued; it is handed back in
    /// [`Rejected::op`].
    Busy,
    /// The request was accepted but the service was torn down before a
    /// worker executed it (only possible through [`Service`]'s drop while
    /// futures are still held). The operation did **not** execute.
    Disconnected,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Busy => write!(f, "submission ring full (backpressure)"),
            ServiceError::Disconnected => write!(f, "request dropped before execution"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One map operation, as submitted to the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpKind<V> {
    /// `get(k)` — replies [`Reply::Got`] with the value cloned out (the
    /// reply crosses a thread boundary, so it cannot borrow the map).
    Get,
    /// `put(k, v)` — insert if absent; replies [`Reply::Inserted`].
    Insert(V),
    /// `remove(k)` — replies [`Reply::Removed`] with the removed value.
    Remove,
    /// Insert-or-replace — executed through the map's native
    /// `upsert_in`; replies [`Reply::Upserted`] with the previous value.
    Upsert(V),
    /// Value compare-and-swap — executed through the map's native
    /// `compare_swap_in`; replies [`Reply::Cas`].
    CompareSwap {
        /// The value the key must currently hold for the swap to apply.
        expected: V,
        /// The replacement installed on a match.
        new: V,
    },
    /// Atomic counter bump (absent keys count from 0) — executed as one
    /// closure RMW through the map's native `rmw_in`; replies
    /// [`Reply::Added`] with the post-increment reading.
    FetchAdd(u64),
}

/// A completed operation's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply<V> {
    /// Result of [`OpKind::Get`].
    Got(Option<V>),
    /// Result of [`OpKind::Insert`]: `true` iff the key was absent and the
    /// pair was inserted.
    Inserted(bool),
    /// Result of [`OpKind::Remove`]: the removed value, if present.
    Removed(Option<V>),
    /// Result of [`OpKind::Upsert`]: the value replaced, if any.
    Upserted(Option<V>),
    /// Result of [`OpKind::CompareSwap`].
    Cas(CasOutcome<V>),
    /// Result of [`OpKind::FetchAdd`]: the counter value after the bump.
    Added(u64),
}

impl<V> Reply<V> {
    /// The carried value for `Got`/`Removed`/`Upserted`/`Cas` replies
    /// (`None` for `Inserted` and `Added`).
    pub fn value(self) -> Option<V> {
        match self {
            Reply::Got(v) | Reply::Removed(v) | Reply::Upserted(v) => v,
            Reply::Cas(out) => out.observed(),
            Reply::Inserted(_) | Reply::Added(_) => None,
        }
    }

    /// Whether this reply is `Inserted(true)`.
    pub fn inserted(&self) -> bool {
        matches!(self, Reply::Inserted(true))
    }

    /// The counter reading of an [`Reply::Added`] reply.
    pub fn added(&self) -> Option<u64> {
        match self {
            Reply::Added(n) => Some(*n),
            _ => None,
        }
    }
}

/// A submission that was not accepted: the reason plus the operation handed
/// back so the caller can retry, shed, or redirect it.
#[derive(Debug)]
pub struct Rejected<V> {
    /// Why the submission was rejected.
    pub reason: ServiceError,
    /// The operation, returned to the caller un-executed.
    pub op: OpKind<V>,
}

/// Construction-time tuning for [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Core worker threads (≥ 1). Each owns one submission ring and one
    /// map session.
    pub cores: usize,
    /// Capacity of each core's submission ring (rounded up to a power of
    /// two). A full ring is the backpressure signal.
    pub ring_capacity: usize,
    /// Most requests a worker executes per guard re-validation (one
    /// `repin` per batch). Smaller values bound how stale a worker's epoch
    /// can get under sustained load; larger values amortize harder.
    pub max_batch: usize,
    /// Entry quota per non-default namespace: a submission that would grow
    /// a tenant past this many entries is rejected at admission with
    /// [`ServiceError::Busy`] (op handed back in [`Rejected::op`]).
    /// `usize::MAX` (the default) disables quota checks entirely; the
    /// default namespace — the caller's own map — is never quota'd.
    pub namespace_quota: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cores: 2,
            ring_capacity: 1024,
            max_batch: 64,
            namespace_quota: usize::MAX,
        }
    }
}

/// A queued request: the operation plus its completion and the submission
/// timestamp (for the latency histogram).
struct Request<V> {
    ns: NamespaceId,
    key: u64,
    op: OpKind<V>,
    enqueued: Instant,
    tx: oneshot::CompletionSender<Reply<V>>,
}

/// Per-core state shared between producers and the owning worker. Padded at
/// the use site: one core's ring endpoints and sleep flag never share a
/// line with a neighbour's.
struct CoreState<V> {
    ring: MpscRing<Request<V>>,
    /// True while the worker is parked (or about to park); producers that
    /// observe it swap it off and unpark the worker.
    sleeping: AtomicBool,
    /// The worker's thread handle, for unparking. Written once at startup.
    thread: Mutex<Option<std::thread::Thread>>,
    /// Live seqlock-published copy of the worker's [`CoreStats`], refreshed
    /// amortized (every [`PUBLISH_BATCHES`] batches / [`PUBLISH_OPS`] ops)
    /// and before every park, so [`Service::stats_now`] can observe a
    /// consistent snapshot mid-run without touching the worker's hot path.
    live: SeqSlot<CORE_STAT_WORDS>,
}

/// State shared by the service, its clients, and its workers.
struct ServiceShared<V: Clone + Send + Sync> {
    cores: Box<[CachePadded<CoreState<V>>]>,
    shutdown: AtomicBool,
    /// Producers currently inside `try_submit`'s enqueue window. Workers
    /// only exit once this is zero *and* their ring is empty, which closes
    /// the race between a final enqueue and worker exit (see
    /// `try_submit`).
    submitting: AtomicUsize,
    /// The namespace directory: an elastic table *of* tenant tables. Keys
    /// are [`NamespaceId`]s, values the tenant's map. Entries are created
    /// lazily by the owning worker on a namespace's first operation and
    /// removed (node EBR-deferred, table freed at collection) by the same
    /// worker once the tenant idles empty — the table-of-tables reuse of
    /// the elastic substrate the ROADMAP promised.
    directory: ElasticHashTable<Arc<ElasticHashTable<V>>>,
    /// Entry quota per tenant ([`ServiceConfig::namespace_quota`]).
    quota: usize,
    /// Tenant tables created (lifetime total across workers).
    ns_created: AtomicUsize,
    /// Tenant tables retired through EBR (lifetime total).
    ns_retired: AtomicUsize,
}

/// Lifetime namespace-directory counters (see
/// [`Service::namespace_counts`]). `created - retired` equals `live` once
/// the service is quiescent; mid-run `live` is a racy gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NamespaceCounts {
    /// Tenant tables created lazily since the service started.
    pub created: u64,
    /// Tenant tables retired through EBR since the service started.
    pub retired: u64,
    /// Tenant tables currently in the directory (excludes the default
    /// namespace, which is not directory-managed).
    pub live: u64,
}

impl<V: Clone + Send + Sync> ServiceShared<V> {
    fn namespace_counts(&self) -> NamespaceCounts {
        NamespaceCounts {
            created: self.ns_created.load(Ordering::Relaxed) as u64,
            retired: self.ns_retired.load(Ordering::Relaxed) as u64,
            live: self.directory.occupancy() as u64,
        }
    }

    /// Read every core's live seqlock slot. A slot mid-publication after the
    /// spin budget falls back to default (all-zero) stats rather than a torn
    /// read — observers prefer briefly-stale over inconsistent.
    fn stats_now(&self) -> ServiceStats {
        ServiceStats {
            per_core: self
                .cores
                .iter()
                .map(|c| {
                    c.live
                        .read_spin(64)
                        .map(|w| CoreStats::from_words(&w))
                        .unwrap_or_default()
                })
                .collect(),
        }
    }
}

/// Monotonic per-core service statistics, collected thread-locally by each
/// worker and returned by [`Service::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Operations executed.
    pub ops: u64,
    /// Batches drained (≥ 1 op each).
    pub batches: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Deepest submission-queue backlog observed at a batch start.
    pub max_depth: u64,
    /// Adaptive drain depth chosen after the last batch (the per-repin
    /// budget the worker is currently willing to execute; see the module
    /// docs on adaptive batching).
    pub batch_target: u64,
    /// Deepest adaptive drain depth the worker reached.
    pub batch_target_max: u64,
    /// Operations executed against non-default namespaces (a subset of
    /// [`ops`](CoreStats::ops)).
    pub ns_ops: u64,
    /// Tenant tables this worker currently owns (created and not yet
    /// retired). Ownership is disjoint across cores, so the aggregate sum
    /// is the service-wide live tenant count as of each worker's last
    /// publication.
    pub owned_namespaces: u64,
    /// Distribution of batch sizes (log₂ buckets).
    pub batch_sizes: LogHistogram,
    /// Distribution of submission-to-completion latency in nanoseconds
    /// (log₂ buckets).
    pub latency_ns: LogHistogram,
}

/// Flat word count of a [`CoreStats`] seqlock publication: eight scalars
/// plus the two log₂ histograms.
const CORE_STAT_WORDS: usize = 8 + 2 * LogHistogram::WORDS;

/// Publication cadence: a worker republishes its live [`CoreStats`] slot
/// after this many batches or [`PUBLISH_OPS`] operations, whichever comes
/// first — and always right before parking, so an idle core's final numbers
/// are never stale.
const PUBLISH_BATCHES: u64 = 64;
const PUBLISH_OPS: u64 = 4096;

impl CoreStats {
    /// Flatten for seqlock publication (single-writer worker side).
    fn to_words(&self) -> [u64; CORE_STAT_WORDS] {
        let mut out = [0u64; CORE_STAT_WORDS];
        out[0] = self.ops;
        out[1] = self.batches;
        out[2] = self.max_batch;
        out[3] = self.max_depth;
        out[4] = self.batch_target;
        out[5] = self.batch_target_max;
        out[6] = self.ns_ops;
        out[7] = self.owned_namespaces;
        self.batch_sizes
            .write_words(&mut out[8..8 + LogHistogram::WORDS]);
        self.latency_ns
            .write_words(&mut out[8 + LogHistogram::WORDS..]);
        out
    }

    /// Rehydrate a validated seqlock read (observer side).
    fn from_words(words: &[u64; CORE_STAT_WORDS]) -> Self {
        CoreStats {
            ops: words[0],
            batches: words[1],
            max_batch: words[2],
            max_depth: words[3],
            batch_target: words[4],
            batch_target_max: words[5],
            ns_ops: words[6],
            owned_namespaces: words[7],
            batch_sizes: LogHistogram::read_words(&words[8..8 + LogHistogram::WORDS]),
            latency_ns: LogHistogram::read_words(&words[8 + LogHistogram::WORDS..]),
        }
    }

    /// Mean operations per drained batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }

    /// Merge another core's stats into this one.
    pub fn merge(&mut self, other: &CoreStats) {
        self.ops += other.ops;
        self.batches += other.batches;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.max_depth = self.max_depth.max(other.max_depth);
        self.batch_target = self.batch_target.max(other.batch_target);
        self.batch_target_max = self.batch_target_max.max(other.batch_target_max);
        self.ns_ops += other.ns_ops;
        self.owned_namespaces += other.owned_namespaces;
        self.batch_sizes.merge(&other.batch_sizes);
        self.latency_ns.merge(&other.latency_ns);
    }
}

/// Final statistics returned by [`Service::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// One entry per core worker, in core order.
    pub per_core: Vec<CoreStats>,
}

impl ServiceStats {
    /// All cores merged into one [`CoreStats`].
    pub fn aggregate(&self) -> CoreStats {
        let mut total = CoreStats::default();
        for c in &self.per_core {
            total.merge(c);
        }
        total
    }
}

/// The async front-end: a fixed pool of core workers serving one
/// [`GuardedMap`]. See the [module docs](self).
///
/// Dropping a `Service` without calling [`shutdown`](Service::shutdown)
/// still shuts down gracefully (drains accepted requests, joins workers) —
/// the stats are simply discarded.
pub struct Service<V, M: GuardedMap<V> + ?Sized + 'static = dyn GuardedMap<V>>
where
    V: Clone + Send + Sync + PartialEq + FetchAddValue + 'static,
{
    map: Arc<M>,
    shared: Arc<ServiceShared<V>>,
    workers: Vec<std::thread::JoinHandle<CoreStats>>,
}

impl<V, M> Service<V, M>
where
    V: Clone + Send + Sync + PartialEq + FetchAddValue + 'static,
    M: GuardedMap<V> + ?Sized + 'static,
{
    /// Start `cfg.cores` workers serving `map`. Workers are running (and
    /// reachable from [`client`](Service::client) handles) when this
    /// returns.
    pub fn start(map: Arc<M>, cfg: ServiceConfig) -> Self {
        let cores = cfg.cores.max(1);
        let max_batch = cfg.max_batch.max(1);
        let shared = Arc::new(ServiceShared {
            cores: (0..cores)
                .map(|_| {
                    CachePadded::new(CoreState {
                        ring: MpscRing::with_capacity(cfg.ring_capacity.max(2)),
                        sleeping: AtomicBool::new(false),
                        thread: Mutex::new(None),
                        live: SeqSlot::new(),
                    })
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            submitting: AtomicUsize::new(0),
            // Sized for a handful of hot tenants per shard; elastic growth
            // carries it to thousands and shrink brings it back.
            directory: ElasticHashTable::with_capacity(64),
            quota: cfg.namespace_quota,
            ns_created: AtomicUsize::new(0),
            ns_retired: AtomicUsize::new(0),
        });
        // Workers wait on the gate until their thread handles are
        // registered, so a producer can always unpark the worker it wakes.
        let gate = Arc::new(Barrier::new(cores + 1));
        let mut workers = Vec::with_capacity(cores);
        for i in 0..cores {
            let map = Arc::clone(&map);
            let shared = Arc::clone(&shared);
            let gate = Arc::clone(&gate);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("csds-service-{i}"))
                    .spawn(move || worker_loop(i, map, shared, gate, max_batch))
                    .expect("spawning a service core worker"),
            );
        }
        for (i, w) in workers.iter().enumerate() {
            *shared.cores[i].thread.lock().unwrap() = Some(w.thread().clone());
        }
        gate.wait();
        Service {
            map,
            shared,
            workers,
        }
    }

    /// A cheap cloneable submission handle. Clients are `Send`; any thread
    /// may submit.
    pub fn client(&self) -> ServiceClient<V> {
        ServiceClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The map being served (e.g. for out-of-band reads or len checks).
    pub fn map(&self) -> &Arc<M> {
        &self.map
    }

    /// Current backlog of each core's submission ring (racy; monitoring).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared.cores.iter().map(|c| c.ring.len()).collect()
    }

    /// Lifetime namespace-directory counters: tenants created, tenants
    /// retired through EBR, and tenants currently live. `created` and
    /// `retired` are exact; `live` is a racy occupancy gauge mid-run.
    pub fn namespace_counts(&self) -> NamespaceCounts {
        self.shared.namespace_counts()
    }

    /// A live snapshot of every core's statistics **while the service is
    /// running** — each worker seqlock-publishes its [`CoreStats`] on an
    /// amortized cadence (and before every park), and this reads every
    /// core's latest consistent publication. Unlike
    /// [`shutdown`](Service::shutdown) it does not stop anything; numbers
    /// may trail the workers by up to one publication interval.
    pub fn stats_now(&self) -> ServiceStats {
        self.shared.stats_now()
    }

    /// Stop intake, drain every accepted request, join the workers, and
    /// return their statistics. Submissions racing this call either enqueue
    /// (and execute) or observe [`ServiceError::ShuttingDown`]; nothing is
    /// accepted-then-dropped.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ServiceStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for c in self.shared.cores.iter() {
            if c.sleeping.swap(false, Ordering::SeqCst) {
                if let Some(t) = c.thread.lock().unwrap().as_ref() {
                    t.unpark();
                }
            }
        }
        let per_core = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("service core worker panicked"))
            .collect();
        ServiceStats { per_core }
    }
}

impl<V, M> Drop for Service<V, M>
where
    V: Clone + Send + Sync + PartialEq + FetchAddValue + 'static,
    M: GuardedMap<V> + ?Sized + 'static,
{
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let _ = self.shutdown_inner();
        }
    }
}

/// A submission handle onto a [`Service`]. Cloneable and `Send`; does not
/// keep the service's workers alive (they belong to the `Service`).
pub struct ServiceClient<V: Clone + Send + Sync> {
    shared: Arc<ServiceShared<V>>,
}

impl<V: Clone + Send + Sync> Clone for ServiceClient<V> {
    fn clone(&self) -> Self {
        ServiceClient {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Does executing `op` possibly insert a new key (and so count against a
/// namespace quota)? `Get`/`Remove` only shrink; `CompareSwap` replaces an
/// existing value and fails on absent keys.
fn op_may_insert<V>(op: &OpKind<V>) -> bool {
    matches!(
        op,
        OpKind::Insert(_) | OpKind::Upsert(_) | OpKind::FetchAdd(_)
    )
}

impl<V: Clone + Send + Sync + PartialEq + FetchAddValue + 'static> ServiceClient<V> {
    /// The core a request routes to: hash(namespace) then hash(key). A
    /// non-default namespace routes by namespace alone, giving each tenant
    /// a single owning worker (which serializes its whole create → operate
    /// → retire lifecycle); the default namespace spreads by key. One
    /// Fibonacci multiply either way, using a bit range disjoint from the
    /// elastic table's shard (top byte) and bucket (bit 32+) indices, so
    /// service routing does not correlate with intra-map placement.
    fn core_of(&self, ns: NamespaceId, key: u64) -> usize {
        let x = if ns == DEFAULT_NAMESPACE { key } else { ns };
        let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 40) as usize) % self.shared.cores.len()
    }

    /// Admission-time quota check: would `op` grow an already-full tenant?
    /// Only consulted for non-default namespaces with a finite quota, and
    /// only for growing ops; ops on keys the tenant already holds pass, so
    /// a full tenant can still be read, updated and drained.
    fn quota_rejects(&self, ns: NamespaceId, key: u64, op: &OpKind<V>) -> bool {
        let sh = &self.shared;
        if ns == DEFAULT_NAMESPACE || sh.quota == usize::MAX || !op_may_insert(op) {
            return false;
        }
        let guard = csds_ebr::pin();
        let Some(table) = sh.directory.get_in(ns, &guard) else {
            // Not created yet: the op itself can add at most one entry, so
            // only a zero quota can already be breached.
            return sh.quota == 0;
        };
        table.len_in(&guard) >= sh.quota && table.get_in(key, &guard).is_none()
    }

    /// Enqueue one operation on the **default namespace** without waiting —
    /// see [`try_submit_ns`](ServiceClient::try_submit_ns).
    pub fn try_submit(&self, key: u64, op: OpKind<V>) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.try_submit_ns(DEFAULT_NAMESPACE, key, op)
    }

    /// Enqueue one operation on namespace `ns` without waiting: `Ok` with
    /// the reply future, or [`Rejected`] with the operation handed back
    /// when the ring is full ([`ServiceError::Busy`]), the namespace is at
    /// its entry quota and `op` would grow it (also
    /// [`ServiceError::Busy`]), or the service is stopping
    /// ([`ServiceError::ShuttingDown`]).
    pub fn try_submit_ns(
        &self,
        ns: NamespaceId,
        key: u64,
        op: OpKind<V>,
    ) -> Result<Completion<Reply<V>>, Rejected<V>> {
        check_user_key(key);
        let sh = &self.shared;
        if sh.shutdown.load(Ordering::SeqCst) {
            return Err(Rejected {
                reason: ServiceError::ShuttingDown,
                op,
            });
        }
        if self.quota_rejects(ns, key, &op) {
            csds_metrics::quota_reject(ns);
            return Err(Rejected {
                reason: ServiceError::Busy,
                op,
            });
        }
        // Enqueue window: workers exit only when `submitting == 0` and
        // their ring is empty, and we re-check `shutdown` after raising the
        // count — so either this submission aborts below, or the push is
        // visible to a worker's exit check and gets drained.
        sh.submitting.fetch_add(1, Ordering::SeqCst);
        if sh.shutdown.load(Ordering::SeqCst) {
            sh.submitting.fetch_sub(1, Ordering::SeqCst);
            return Err(Rejected {
                reason: ServiceError::ShuttingDown,
                op,
            });
        }
        let core_idx = self.core_of(ns, key);
        let core = &sh.cores[core_idx];
        let (tx, rx) = oneshot::completion();
        let pushed = core.ring.try_push(Request {
            ns,
            key,
            op,
            enqueued: Instant::now(),
            tx,
        });
        // Publish the push before reading the sleep flag (paired with the
        // worker's fence between raising the flag and re-checking the
        // ring): at least one side observes the other, so the wakeup
        // cannot be lost.
        fence(Ordering::SeqCst);
        let res = match pushed {
            Ok(()) => {
                if core.sleeping.swap(false, Ordering::SeqCst) {
                    if let Some(t) = core.thread.lock().unwrap().as_ref() {
                        t.unpark();
                    }
                }
                Ok(rx)
            }
            Err(back) => {
                // Backpressure is a first-class signal: count it and trace
                // which core's ring saturated.
                csds_metrics::service_busy(core_idx as u64);
                Err(Rejected {
                    reason: ServiceError::Busy,
                    op: back.op,
                })
            }
        };
        sh.submitting.fetch_sub(1, Ordering::SeqCst);
        res
    }

    /// Enqueue one operation on the default namespace, spinning (with
    /// [`Backoff`]) while the target ring is full — backpressure as
    /// blocking. Fails only on shutdown.
    pub fn submit(&self, key: u64, op: OpKind<V>) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit_ns(DEFAULT_NAMESPACE, key, op)
    }

    /// Enqueue one operation on namespace `ns`, spinning (with [`Backoff`])
    /// while the target ring is full. **A quota breach is returned, not
    /// spun on**: a ring drains by itself, a full tenant does not — the
    /// caller decides whether to shed, redirect, or free space.
    pub fn submit_ns(
        &self,
        ns: NamespaceId,
        key: u64,
        op: OpKind<V>,
    ) -> Result<Completion<Reply<V>>, Rejected<V>> {
        let mut op = op;
        let mut backoff = Backoff::new();
        loop {
            match self.try_submit_ns(ns, key, op) {
                Ok(c) => return Ok(c),
                Err(r) if r.reason == ServiceError::Busy && !self.quota_rejects(ns, key, &r.op) => {
                    op = r.op;
                    backoff.snooze();
                }
                Err(r) => return Err(r),
            }
        }
    }

    /// A view of this client fixed to namespace `ns`: the same vocabulary
    /// ([`get`](NamespaceClient::get), [`insert`](NamespaceClient::insert),
    /// ...) against one tenant keyspace. Cheap; clone freely.
    pub fn namespace(&self, ns: NamespaceId) -> NamespaceClient<V> {
        NamespaceClient {
            client: self.clone(),
            ns,
        }
    }

    /// Lifetime namespace-directory counters; see
    /// [`Service::namespace_counts`].
    pub fn namespace_counts(&self) -> NamespaceCounts {
        self.shared.namespace_counts()
    }

    /// `get(k)` through the service; resolves to [`Reply::Got`].
    pub fn get(&self, key: u64) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::Get)
    }

    /// `put(k, v)` through the service; resolves to [`Reply::Inserted`].
    pub fn insert(&self, key: u64, value: V) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::Insert(value))
    }

    /// `remove(k)` through the service; resolves to [`Reply::Removed`].
    pub fn remove(&self, key: u64) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::Remove)
    }

    /// Insert-or-replace through the service; resolves to
    /// [`Reply::Upserted`] with the previous value.
    pub fn upsert(&self, key: u64, value: V) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::Upsert(value))
    }

    /// Value compare-and-swap through the service; resolves to
    /// [`Reply::Cas`].
    pub fn compare_swap(
        &self,
        key: u64,
        expected: V,
        new: V,
    ) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::CompareSwap { expected, new })
    }

    /// Atomic counter bump through the service (absent keys count from 0);
    /// resolves to [`Reply::Added`] with the post-increment reading.
    pub fn fetch_add(&self, key: u64, delta: u64) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::FetchAdd(delta))
    }

    /// Submit a pipelined burst: every operation is enqueued (blocking on
    /// backpressure) before any reply is awaited, so one client keeps
    /// several core workers busy at once. Returns the completions in
    /// submission order. On shutdown mid-batch the already-enqueued prefix
    /// still executes; the rejected operation is handed back.
    pub fn submit_batch(
        &self,
        ops: impl IntoIterator<Item = (u64, OpKind<V>)>,
    ) -> Result<Vec<Completion<Reply<V>>>, Rejected<V>> {
        let ops = ops.into_iter();
        let mut out = Vec::with_capacity(ops.size_hint().0);
        for (key, op) in ops {
            out.push(self.submit(key, op)?);
        }
        Ok(out)
    }

    /// Whether the service has begun shutting down.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Current backlog of each core's submission ring (racy; monitoring).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared.cores.iter().map(|c| c.ring.len()).collect()
    }

    /// A live snapshot of every core's statistics; see
    /// [`Service::stats_now`]. Available from any client so monitoring does
    /// not need a handle on the `Service` itself.
    pub fn stats_now(&self) -> ServiceStats {
        self.shared.stats_now()
    }
}

/// A [`ServiceClient`] fixed to one namespace: the full submission
/// vocabulary against a single tenant keyspace. Obtained from
/// [`ServiceClient::namespace`]; cloneable and `Send` like its parent.
pub struct NamespaceClient<V: Clone + Send + Sync> {
    client: ServiceClient<V>,
    ns: NamespaceId,
}

impl<V: Clone + Send + Sync> Clone for NamespaceClient<V> {
    fn clone(&self) -> Self {
        NamespaceClient {
            client: self.client.clone(),
            ns: self.ns,
        }
    }
}

impl<V: Clone + Send + Sync + PartialEq + FetchAddValue + 'static> NamespaceClient<V> {
    /// The namespace this view is fixed to.
    pub fn id(&self) -> NamespaceId {
        self.ns
    }

    /// Non-blocking submit into this namespace; see
    /// [`ServiceClient::try_submit_ns`].
    pub fn try_submit(&self, key: u64, op: OpKind<V>) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.client.try_submit_ns(self.ns, key, op)
    }

    /// Blocking-on-backpressure submit into this namespace; see
    /// [`ServiceClient::submit_ns`].
    pub fn submit(&self, key: u64, op: OpKind<V>) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.client.submit_ns(self.ns, key, op)
    }

    /// `get(k)` in this namespace; resolves to [`Reply::Got`].
    pub fn get(&self, key: u64) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::Get)
    }

    /// `put(k, v)` in this namespace; resolves to [`Reply::Inserted`].
    pub fn insert(&self, key: u64, value: V) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::Insert(value))
    }

    /// `remove(k)` in this namespace; resolves to [`Reply::Removed`].
    pub fn remove(&self, key: u64) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::Remove)
    }

    /// Insert-or-replace in this namespace; resolves to [`Reply::Upserted`].
    pub fn upsert(&self, key: u64, value: V) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::Upsert(value))
    }

    /// Value compare-and-swap in this namespace; resolves to [`Reply::Cas`].
    pub fn compare_swap(
        &self,
        key: u64,
        expected: V,
        new: V,
    ) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::CompareSwap { expected, new })
    }

    /// Atomic counter bump in this namespace; resolves to [`Reply::Added`].
    pub fn fetch_add(&self, key: u64, delta: u64) -> Result<Completion<Reply<V>>, Rejected<V>> {
        self.submit(key, OpKind::FetchAdd(delta))
    }

    /// Pipelined burst into this namespace; see
    /// [`ServiceClient::submit_batch`].
    pub fn submit_batch(
        &self,
        ops: impl IntoIterator<Item = (u64, OpKind<V>)>,
    ) -> Result<Vec<Completion<Reply<V>>>, Rejected<V>> {
        let ops = ops.into_iter();
        let mut out = Vec::with_capacity(ops.size_hint().0);
        for (key, op) in ops {
            out.push(self.submit(key, op)?);
        }
        Ok(out)
    }
}

/// Execute one operation against any [`GuardedMap`] under `guard`. Shared
/// by the default-namespace path (the service's own map) and the tenant
/// path (directory tables) — one vocabulary, any map.
fn execute_op<V, T>(map: &T, key: u64, op: OpKind<V>, guard: &Guard) -> Reply<V>
where
    V: Clone + Send + Sync + PartialEq + FetchAddValue + 'static,
    T: GuardedMap<V> + ?Sized,
{
    match op {
        OpKind::Get => Reply::Got(map.get_in(key, guard).cloned()),
        OpKind::Insert(v) => Reply::Inserted(map.insert_in(key, v, guard)),
        OpKind::Remove => Reply::Removed(map.remove_in(key, guard)),
        OpKind::Upsert(v) => Reply::Upserted(map.upsert_in(key, v, guard)),
        OpKind::CompareSwap { expected, new } => {
            Reply::Cas(map.compare_swap_in(key, &expected, new, guard))
        }
        OpKind::FetchAdd(delta) => {
            let out = map.rmw_in(
                key,
                &mut |cur| Some(V::from_u64(cur.map_or(0, V::to_u64).wrapping_add(delta))),
                guard,
            );
            Reply::Added(out.cur.map_or(0, V::to_u64))
        }
    }
}

/// Routing entries a worker keeps for the tenants it owns. The cache is a
/// deliberately **pin-free** LRU: entries are `(namespace, Arc<table>)`
/// pairs, *not* live `MapHandle`s — N live handles on one thread would make
/// every repin inert and stall reclamation process-wide (the PR 6 bug
/// class). The worker's single session guard executes ops on every cached
/// table; parking drops both the cache and the session, so an idle core
/// holds neither the epoch nor retired tenants' memory.
struct TenantRouter<V: Clone + Send + Sync> {
    /// MRU-first routing cache over the directory (bounded at
    /// [`HANDLE_CACHE_CAP`]).
    cache: Vec<(NamespaceId, Arc<ElasticHashTable<V>>)>,
    /// Every namespace this worker created and has not yet retired.
    /// Ownership is exclusive (namespace-hash routing), so nobody else
    /// creates or retires these.
    owned: Vec<NamespaceId>,
    /// Rotating cursor into `owned` for budgeted idle sweeps.
    sweep_at: usize,
}

/// Cached routing entries per worker. Small on purpose: a miss is one
/// directory lookup, while an unbounded cache would anchor every idle
/// tenant's memory to the worker.
const HANDLE_CACHE_CAP: usize = 32;

/// Most owned namespaces examined per idle sweep, so a worker owning
/// thousands of tenants bounds its pre-park housekeeping and spreads the
/// scan across parks via `sweep_at`.
const IDLE_SWEEP_BUDGET: usize = 256;

impl<V: Clone + Send + Sync + 'static> TenantRouter<V> {
    fn new() -> Self {
        TenantRouter {
            cache: Vec::with_capacity(HANDLE_CACHE_CAP),
            owned: Vec::new(),
            sweep_at: 0,
        }
    }

    /// The tenant table for `ns`, from the cache, the directory, or (first
    /// operation on this namespace) created lazily and published. Only the
    /// owning worker calls this, so a miss-then-create cannot race another
    /// creator; the insert is still the atomic lock-free path, so the
    /// invariant is checked, not assumed.
    fn resolve(
        &mut self,
        ns: NamespaceId,
        shared: &ServiceShared<V>,
        guard: &Guard,
    ) -> Arc<ElasticHashTable<V>> {
        if let Some(pos) = self.cache.iter().position(|(n, _)| *n == ns) {
            let entry = self.cache.remove(pos);
            let table = Arc::clone(&entry.1);
            self.cache.insert(0, entry);
            return table;
        }
        let table = match shared.directory.get_in(ns, guard) {
            Some(t) => Arc::clone(t),
            None => {
                let fresh = Arc::new(ElasticHashTable::tenant());
                if shared.directory.insert_in(ns, Arc::clone(&fresh), guard) {
                    shared.ns_created.fetch_add(1, Ordering::Relaxed);
                    csds_metrics::namespace_create(ns);
                    self.owned.push(ns);
                    fresh
                } else {
                    // Namespace-hash routing makes this unreachable (one
                    // creator per namespace), but losing the race cleanly —
                    // drop the loser's table, adopt the winner's — keeps
                    // correctness independent of the routing policy.
                    Arc::clone(
                        shared
                            .directory
                            .get_in(ns, guard)
                            .expect("a racing creator published this namespace"),
                    )
                }
            }
        };
        self.cache.insert(0, (ns, Arc::clone(&table)));
        self.cache.truncate(HANDLE_CACHE_CAP);
        table
    }

    /// Pre-park housekeeping over (a budgeted slice of) the owned tenants:
    /// an **empty** tenant is unlinked from the directory and retired — the
    /// removed node carries the last directory `Arc`, so the table itself
    /// is freed by EBR at collection, after any in-flight readers of the
    /// directory bucket are done. A non-empty tenant is compacted back
    /// toward its one-bucket floor instead (idle tables see no ops, so no
    /// op-driven resize would ever shrink them).
    fn idle_sweep(&mut self, shared: &ServiceShared<V>, guard: &Guard) -> u64 {
        let mut retired = 0u64;
        let budget = self.owned.len().min(IDLE_SWEEP_BUDGET);
        for _ in 0..budget {
            if self.owned.is_empty() {
                break;
            }
            if self.sweep_at >= self.owned.len() {
                self.sweep_at = 0;
            }
            let ns = self.owned[self.sweep_at];
            let Some(table) = shared.directory.get_in(ns, guard).map(Arc::clone) else {
                // Unreachable while ownership is exclusive; tolerate it.
                self.owned.swap_remove(self.sweep_at);
                continue;
            };
            if table.is_empty_in(guard) {
                // Exclusive ownership means nothing can repopulate the
                // table between the emptiness check and the unlink.
                drop(shared.directory.remove_in(ns, guard));
                self.owned.swap_remove(self.sweep_at);
                shared.ns_retired.fetch_add(1, Ordering::Relaxed);
                csds_metrics::namespace_retire(ns);
                retired += 1;
            } else {
                table.compact_in(guard);
                self.sweep_at += 1;
            }
        }
        if retired > 0 {
            // Drop routing entries for retired tenants (and any stale
            // neighbours) wholesale; the cache refills on demand.
            let owned = &self.owned;
            self.cache.retain(|(n, _)| owned.contains(n));
        }
        retired
    }
}

/// The core worker: drain batches from the owned ring, execute them against
/// the routed map through one reused session, sleep when idle, exit when
/// the service shuts down *and* nothing more can arrive.
fn worker_loop<V, M>(
    core_idx: usize,
    map: Arc<M>,
    shared: Arc<ServiceShared<V>>,
    gate: Arc<Barrier>,
    max_batch: usize,
) -> CoreStats
where
    V: Clone + Send + Sync + PartialEq + FetchAddValue + 'static,
    M: GuardedMap<V> + ?Sized + 'static,
{
    gate.wait();
    let core = &shared.cores[core_idx];
    let mut stats = CoreStats::default();
    // The worker's map session. Dropped (unpinning the thread) before every
    // park and re-opened on wake: an idle core must never hold the global
    // epoch back — the `MapHandle` discipline the library documents,
    // applied to the pool.
    let mut session: Option<MapHandle<'_, V, M>> = None;
    // Routing state for the tenants this worker owns (see [`TenantRouter`]).
    let mut tenants: TenantRouter<V> = TenantRouter::new();
    // Ops executed since the last pre-park flush: their removes deferred
    // garbage into this thread's local EBR queue, which nobody else can
    // drain while we sleep.
    let mut dirty = false;
    let mut batch: Vec<Request<V>> = Vec::with_capacity(max_batch);
    // Adaptive drain depth: start shallow, double (up to `max_batch`) while
    // the ring stays hot — a full drain that leaves a backlog — and decay
    // back to the floor when it runs cold, so a bursty core amortizes its
    // repin harder while a trickling core re-validates (and parks) sooner.
    let floor = max_batch.clamp(1, 8);
    let mut target = floor;
    // Operations executed since the live stats slot was last published.
    let mut since_publish = 0u64;
    loop {
        let depth = core.ring.len() as u64;
        let processed = core.ring.pop_batch(&mut batch, target) as u64;
        if processed > 0 {
            let h = session.get_or_insert_with(|| MapHandle::new(&*map));
            // One guard re-validation per batch — the amortization this
            // front-end exists to provide.
            h.refresh();
            let guard = h.guard();
            for req in batch.drain(..) {
                // Routing dispatch: the default namespace is the service's
                // own map (per-key routing, zero-cost compatibility path);
                // every other namespace resolves through the directory.
                let reply = if req.ns == DEFAULT_NAMESPACE {
                    execute_op(&*map, req.key, req.op, guard)
                } else {
                    let table = tenants.resolve(req.ns, &shared, guard);
                    stats.ns_ops += 1;
                    execute_op(&*table, req.key, req.op, guard)
                };
                stats
                    .latency_ns
                    .record(req.enqueued.elapsed().as_nanos() as u64);
                req.tx.send(reply);
            }
            stats.owned_namespaces = tenants.owned.len() as u64;
            dirty = true;
            stats.ops += processed;
            stats.batches += 1;
            stats.max_batch = stats.max_batch.max(processed);
            stats.max_depth = stats.max_depth.max(depth.max(processed));
            stats.batch_sizes.record(processed);
            // Adapt the drain depth to the observed backlog.
            if processed == target as u64 && !core.ring.is_empty() {
                target = (target * 2).min(max_batch);
            } else if core.ring.is_empty() && target > floor {
                target = floor.max(target / 2);
            }
            stats.batch_target = target as u64;
            stats.batch_target_max = stats.batch_target_max.max(target as u64);
            // Amortized live publication: one seqlock write per
            // PUBLISH_BATCHES batches (or PUBLISH_OPS ops on huge batches),
            // so observers see fresh numbers without the worker paying a
            // per-op cost.
            since_publish += processed;
            if stats.batches % PUBLISH_BATCHES == 0 || since_publish >= PUBLISH_OPS {
                core.live.publish(&stats.to_words());
                since_publish = 0;
            }
            continue;
        }
        // Idle. A hot stream that just dried up often refills within a few
        // cache misses: spin briefly before paying the park/unpark cycle.
        // A cold core (target at the floor) parks immediately instead.
        if target > floor {
            target = floor.max(target / 2);
            stats.batch_target = target as u64;
            let mut refilled = false;
            for _ in 0..64 {
                if !core.ring.is_empty() {
                    refilled = true;
                    break;
                }
                std::hint::spin_loop();
            }
            if refilled {
                continue;
            }
        }
        // Exit only when intake is closed, no producer is inside the
        // enqueue window, and the ring is drained — in that order, so a
        // submission that passed its shutdown re-check is never stranded.
        if shared.shutdown.load(Ordering::SeqCst)
            && shared.submitting.load(Ordering::SeqCst) == 0
            && core.ring.is_empty()
        {
            core.live.publish(&stats.to_words());
            break;
        }
        // Park preparation, in hazard order: close the session (unpin),
        // drop the routing cache (no `Arc`s anchoring retired tenants),
        // *then* take a fresh short-lived pin for tenant housekeeping. The
        // sweep must not run under the session guard — a long-lived outer
        // guard would make its own `remove_in` deferrals uncollectable
        // (nested pins skip maintenance), exactly the stall the EBR
        // watchdog exists to catch.
        session = None;
        tenants.cache.clear();
        if dirty || !tenants.owned.is_empty() {
            if !tenants.owned.is_empty() {
                let guard = csds_ebr::pin();
                let retired = tenants.idle_sweep(&shared, &guard);
                drop(guard);
                if retired > 0 {
                    stats.owned_namespaces = tenants.owned.len() as u64;
                    since_publish += 1; // force a publish below
                }
            }
            // Drain this worker's deferred garbage (removed nodes, retired
            // tenant tables) before sleeping: only the retiring thread can
            // execute its local queue, so a parked worker would warehouse
            // that memory for the duration of its sleep. Each flush
            // advances the epoch at most one step and a bag sealed at
            // epoch E ripens at E+2, so walk a few short pins forward —
            // bounded, because a genuinely pinned peer can legitimately
            // hold the epoch (its own maintenance will finish the job).
            for _ in 0..4 {
                if csds_ebr::local_garbage_items() == 0 {
                    break;
                }
                csds_ebr::pin().flush();
            }
            dirty = false;
        }
        // Publish before parking: an idle core's slot holds its final
        // numbers, not up to PUBLISH_BATCHES-stale ones.
        if since_publish > 0 {
            core.live.publish(&stats.to_words());
            since_publish = 0;
        }
        core.sleeping.store(true, Ordering::SeqCst);
        // Paired with the producer-side fence: re-check after raising the
        // flag so a push racing the park is either seen here or sees the
        // flag and unparks us. The park timeout is a belt-and-braces bound,
        // not the wakeup mechanism.
        fence(Ordering::SeqCst);
        if !core.ring.is_empty() || shared.shutdown.load(Ordering::SeqCst) {
            core.sleeping.store(false, Ordering::SeqCst);
            continue;
        }
        std::thread::park_timeout(Duration::from_millis(1));
        core.sleeping.store(false, Ordering::SeqCst);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use csds_core::hashtable::LazyHashTable;
    use csds_core::ConcurrentMap;

    fn small() -> ServiceConfig {
        ServiceConfig {
            cores: 2,
            ring_capacity: 8,
            max_batch: 4,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn basic_ops_roundtrip() {
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
        let svc = Service::start(Arc::clone(&map), small());
        let client = svc.client();
        assert!(block_on(client.insert(1, 10).unwrap()).unwrap().inserted());
        assert!(!block_on(client.insert(1, 11).unwrap()).unwrap().inserted());
        assert_eq!(
            block_on(client.get(1).unwrap()).unwrap(),
            Reply::Got(Some(10))
        );
        assert_eq!(
            block_on(client.remove(1).unwrap()).unwrap(),
            Reply::Removed(Some(10))
        );
        assert_eq!(block_on(client.get(1).unwrap()).unwrap(), Reply::Got(None));
        let stats = svc.shutdown();
        assert_eq!(stats.aggregate().ops, 5);
        assert!(stats.aggregate().batches >= 1);
        assert_eq!(stats.aggregate().latency_ns.count(), 5);
    }

    #[test]
    fn batch_pipelines_and_preserves_per_key_order() {
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
        let svc = Service::start(Arc::clone(&map), small());
        let client = svc.client();
        // Insert then remove then insert the same key in one burst: per-key
        // routing guarantees they execute in submission order.
        let batch = client
            .submit_batch(vec![
                (5, OpKind::Insert(50)),
                (5, OpKind::Remove),
                (5, OpKind::Insert(51)),
            ])
            .unwrap();
        let replies: Vec<_> = batch.into_iter().map(|c| c.wait().unwrap()).collect();
        assert_eq!(
            replies,
            vec![
                Reply::Inserted(true),
                Reply::Removed(Some(50)),
                Reply::Inserted(true),
            ]
        );
        assert_eq!(map.get(5), Some(51));
        svc.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
        let svc = Service::start(map, small());
        let client = svc.client();
        assert!(block_on(client.insert(3, 30).unwrap()).unwrap().inserted());
        svc.shutdown();
        assert!(client.is_shutting_down());
        let err = client.get(3).unwrap_err();
        assert_eq!(err.reason, ServiceError::ShuttingDown);
        assert!(matches!(err.op, OpKind::Get));
    }

    #[test]
    fn many_clients_many_keys() {
        const CLIENTS: usize = 4;
        const PER_CLIENT: u64 = 2_000;
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(1024));
        let svc = Service::start(Arc::clone(&map), ServiceConfig::default());
        let mut threads = Vec::new();
        for c in 0..CLIENTS as u64 {
            let client = svc.client();
            threads.push(std::thread::spawn(move || {
                // Disjoint key ranges per client: every insert must succeed.
                let base = c * PER_CLIENT;
                let batch = client
                    .submit_batch((0..PER_CLIENT).map(|i| (base + i, OpKind::Insert(base + i))))
                    .unwrap();
                for f in batch {
                    assert!(f.wait().unwrap().inserted());
                }
                for i in 0..PER_CLIENT {
                    let got = client.get(base + i).unwrap().wait().unwrap();
                    assert_eq!(got, Reply::Got(Some(base + i)));
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(map.len(), (CLIENTS as u64 * PER_CLIENT) as usize);
        let stats = svc.shutdown();
        assert_eq!(
            stats.aggregate().ops,
            2 * CLIENTS as u64 * PER_CLIENT,
            "every accepted op must execute exactly once"
        );
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        // Accepted-then-shutdown requests must still execute (workers drain
        // their rings before exiting).
        for _ in 0..20 {
            let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(256));
            let svc = Service::start(Arc::clone(&map), ServiceConfig::default());
            let client = svc.client();
            let pending = client
                .submit_batch((0..128).map(|k| (k, OpKind::Insert(k))))
                .unwrap();
            let stats = svc.shutdown(); // races the workers' draining
            for f in pending {
                assert!(f.wait().unwrap().inserted(), "accepted op dropped");
            }
            assert_eq!(map.len(), 128);
            assert_eq!(stats.aggregate().ops, 128);
        }
    }

    #[test]
    fn stats_now_sees_live_progress() {
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(256));
        let svc = Service::start(Arc::clone(&map), small());
        let client = svc.client();
        // Idle service: slots hold their initial (all-zero) publication.
        assert_eq!(svc.stats_now().aggregate().ops, 0);
        let batch = client
            .submit_batch((0..512).map(|k| (k, OpKind::Insert(k))))
            .unwrap();
        for c in batch {
            assert!(c.wait().unwrap().inserted());
        }
        // Every reply resolved, so all 512 ops executed; the workers then go
        // idle and publish on the park path. Poll briefly for that.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let live = client.stats_now().aggregate();
            if live.ops == 512 {
                assert!(live.batches >= 1);
                assert_eq!(live.latency_ns.count(), 512);
                break;
            }
            assert!(
                Instant::now() < deadline,
                "live stats never caught up: {} of 512 ops visible",
                live.ops
            );
            std::thread::yield_now();
        }
        // The live snapshot and the shutdown truth agree.
        let fin = svc.shutdown().aggregate();
        assert_eq!(fin.ops, 512);
    }

    #[test]
    fn busy_rejections_are_counted() {
        let _ = csds_metrics::take_and_reset();
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
        // One core, tiny ring: a fast burst of try_submits must hit Busy.
        let svc = Service::start(
            Arc::clone(&map),
            ServiceConfig {
                cores: 1,
                ring_capacity: 2,
                max_batch: 1,
                ..ServiceConfig::default()
            },
        );
        let client = svc.client();
        let mut rejected = 0u64;
        let mut accepted = Vec::new();
        for k in 0..512u64 {
            match client.try_submit(k, OpKind::Insert(k)) {
                Ok(c) => accepted.push(c),
                Err(r) => {
                    assert_eq!(r.reason, ServiceError::Busy);
                    rejected += 1;
                }
            }
        }
        for c in accepted {
            c.wait().unwrap();
        }
        svc.shutdown();
        let snap = csds_metrics::take_and_reset();
        assert_eq!(
            snap.service_busy, rejected,
            "every Busy rejection must tick the service_busy counter"
        );
    }

    #[test]
    fn reply_helpers() {
        assert_eq!(Reply::Got(Some(3)).value(), Some(3));
        assert_eq!(Reply::<u64>::Got(None).value(), None);
        assert_eq!(Reply::Removed(Some(4)).value(), Some(4));
        assert_eq!(Reply::<u64>::Inserted(true).value(), None);
        assert!(Reply::<u64>::Inserted(true).inserted());
        assert!(!Reply::<u64>::Inserted(false).inserted());
        assert!(!Reply::<u64>::Got(Some(1)).inserted());
    }

    #[test]
    fn namespaces_roundtrip_and_isolate_from_default_map() {
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
        let svc = Service::start(Arc::clone(&map), small());
        let client = svc.client();
        let ns_a = client.namespace(7);
        let ns_b = client.namespace(8);
        // Same key, three homes: the default map and two tenants.
        assert!(block_on(client.insert(1, 100).unwrap()).unwrap().inserted());
        assert!(block_on(ns_a.insert(1, 200).unwrap()).unwrap().inserted());
        assert!(block_on(ns_b.insert(1, 300).unwrap()).unwrap().inserted());
        assert_eq!(
            block_on(client.get(1).unwrap()).unwrap(),
            Reply::Got(Some(100))
        );
        assert_eq!(
            block_on(ns_a.get(1).unwrap()).unwrap(),
            Reply::Got(Some(200))
        );
        assert_eq!(
            block_on(ns_b.get(1).unwrap()).unwrap(),
            Reply::Got(Some(300))
        );
        let counts = svc.namespace_counts();
        assert_eq!(counts.created, 2, "two tenants were lazily created");
        assert_eq!(counts.live, 2);
        // Removing ns_a's key empties that tenant; an idle sweep may retire
        // it, after which a fresh op revives it transparently.
        assert_eq!(
            block_on(ns_a.remove(1).unwrap()).unwrap(),
            Reply::Removed(Some(200))
        );
        assert_eq!(block_on(ns_a.get(1).unwrap()).unwrap(), Reply::Got(None));
        svc.shutdown();
    }

    #[test]
    fn namespace_quota_hands_the_op_back() {
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
        let svc = Service::start(
            Arc::clone(&map),
            ServiceConfig {
                namespace_quota: 2,
                ..small()
            },
        );
        let client = svc.client();
        let ns = client.namespace(42);
        assert!(block_on(ns.insert(1, 1).unwrap()).unwrap().inserted());
        assert!(block_on(ns.insert(2, 2).unwrap()).unwrap().inserted());
        // At quota: a third distinct key is refused with the op handed back…
        match ns.try_submit(3, OpKind::Insert(3)) {
            Err(rej) => {
                assert_eq!(rej.reason, ServiceError::Busy);
                assert!(matches!(rej.op, OpKind::Insert(3)));
            }
            Ok(_) => panic!("insert beyond quota must be rejected"),
        }
        // …while updates to resident keys and reads still pass.
        assert!(!block_on(ns.insert(1, 9).unwrap()).unwrap().inserted());
        assert_eq!(block_on(ns.get(2).unwrap()).unwrap(), Reply::Got(Some(2)));
        // The default namespace is never quota'd.
        for k in 0..8 {
            assert!(block_on(client.insert(k, k).unwrap()).unwrap().inserted());
        }
        svc.shutdown();
    }

    #[test]
    fn reserved_keys_are_rejected_at_submission() {
        let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(16));
        let svc = Service::start(map, small());
        let client = svc.client();
        for reserved in [u64::MAX, u64::MAX - 1] {
            assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = client.get(reserved);
            }))
            .is_err());
        }
        svc.shutdown();
    }
}
