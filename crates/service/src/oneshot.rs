//! Minimal std-only future machinery: a oneshot completion channel and a
//! thread-parking `block_on`.
//!
//! No async runtime exists in this offline workspace (the same constraint
//! that produced the `criterion`/`proptest` shims), so the service
//! hand-rolls the two pieces it actually needs:
//!
//! * [`Completion`] — the receiving half of a oneshot channel, as a
//!   standard [`Future`]. A core worker fulfils it with the operation's
//!   [`Reply`](crate::Reply); if the sending half is dropped unfulfilled
//!   (service torn down with the request still queued), the future resolves
//!   to [`ServiceError::Disconnected`] instead of hanging forever.
//! * [`block_on`] — drives any future to completion on the current thread,
//!   parking between polls. The waker unparks the thread, so a completion
//!   delivered from a core worker costs one `unpark`, not a spin loop.
//!
//! The channel is a mutex around a four-state enum. That is deliberate: the
//! lock is uncontended (one producer, one consumer, each touching it once
//! or twice per operation), and the service amortizes every per-operation
//! cost at the batch layer, not here.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use crate::ServiceError;

enum State<T> {
    /// Not yet fulfilled; holds the waker of the most recent poll.
    Pending(Option<Waker>),
    /// Fulfilled, value not yet claimed by a poll.
    Done(T),
    /// Sender dropped without fulfilling.
    Closed,
    /// A poll already returned `Ready`; terminal.
    Finished,
}

struct Channel<T> {
    state: Mutex<State<T>>,
}

/// Create a connected sender/future pair.
pub(crate) fn completion<T>() -> (CompletionSender<T>, Completion<T>) {
    let ch = Arc::new(Channel {
        state: Mutex::new(State::Pending(None)),
    });
    (
        CompletionSender {
            ch: Arc::clone(&ch),
            sent: false,
        },
        Completion { ch },
    )
}

/// Fulfilling half of a oneshot completion; owned by the request while it
/// sits in a submission ring, consumed by the core worker that executes it.
pub(crate) struct CompletionSender<T> {
    ch: Arc<Channel<T>>,
    sent: bool,
}

impl<T> CompletionSender<T> {
    /// Fulfil the completion and wake its awaiter (if any).
    pub(crate) fn send(mut self, value: T) {
        self.sent = true;
        let waker = {
            let mut st = self.ch.state.lock().unwrap();
            match std::mem::replace(&mut *st, State::Done(value)) {
                State::Pending(w) => w,
                // The receiving future was dropped or already finished;
                // restore whatever was there and discard the value.
                other => {
                    *st = other;
                    None
                }
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for CompletionSender<T> {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        // Dropped unfulfilled (service teardown with the request still
        // queued): fail the future rather than stranding its awaiter.
        let waker = {
            let mut st = self.ch.state.lock().unwrap();
            match std::mem::replace(&mut *st, State::Closed) {
                State::Pending(w) => w,
                other => {
                    *st = other;
                    None
                }
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// The receiving half of a oneshot completion: a [`Future`] resolving to
/// the operation's result, or [`ServiceError::Disconnected`] if the service
/// was torn down before executing it.
#[must_use = "a Completion does nothing until awaited (or .wait()ed)"]
pub struct Completion<T> {
    ch: Arc<Channel<T>>,
}

impl<T> std::fmt::Debug for Completion<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.ch.state.lock().unwrap();
        let name = match &*st {
            State::Pending(_) => "pending",
            State::Done(_) => "done",
            State::Closed => "closed",
            State::Finished => "finished",
        };
        write!(f, "Completion({name})")
    }
}

impl<T> Completion<T> {
    /// Block the current thread until the completion resolves (convenience
    /// wrapper over [`block_on`]).
    pub fn wait(self) -> Result<T, ServiceError> {
        block_on(self)
    }

    /// Non-blocking probe: `Some` once resolved (consumes the result).
    pub fn try_take(&mut self) -> Option<Result<T, ServiceError>> {
        let mut st = self.ch.state.lock().unwrap();
        match std::mem::replace(&mut *st, State::Finished) {
            State::Done(v) => Some(Ok(v)),
            State::Closed => Some(Err(ServiceError::Disconnected)),
            other => {
                *st = other;
                None
            }
        }
    }
}

impl<T> Future for Completion<T> {
    type Output = Result<T, ServiceError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.ch.state.lock().unwrap();
        match std::mem::replace(&mut *st, State::Finished) {
            State::Done(v) => Poll::Ready(Ok(v)),
            State::Closed => Poll::Ready(Err(ServiceError::Disconnected)),
            State::Pending(_) => {
                *st = State::Pending(Some(cx.waker().clone()));
                Poll::Pending
            }
            State::Finished => panic!("Completion polled after it returned Ready"),
        }
    }
}

/// Thread-parking waker for [`block_on`].
struct ThreadWaker(std::thread::Thread);

impl std::task::Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drive `fut` to completion on the current thread, parking between polls.
///
/// This is the examples'/tests' executor: real deployments would poll
/// [`Completion`]s from their own event loop, but a closed-loop caller can
/// simply `block_on(client.get(k))`. Parking tolerates spurious wakeups
/// (the loop re-polls), and wakes delivered before the park consume the
/// park token, so the wakeup cannot be lost.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_before_poll() {
        let (tx, rx) = completion::<u32>();
        tx.send(7);
        assert_eq!(block_on(rx), Ok(7));
    }

    #[test]
    fn completes_across_threads_while_parked() {
        let (tx, rx) = completion::<&'static str>();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send("done");
        });
        assert_eq!(block_on(rx), Ok("done"));
        sender.join().unwrap();
    }

    #[test]
    fn dropped_sender_resolves_disconnected() {
        let (tx, rx) = completion::<u32>();
        drop(tx);
        assert_eq!(block_on(rx), Err(ServiceError::Disconnected));
    }

    #[test]
    fn try_take_probes_without_blocking() {
        let (tx, mut rx) = completion::<u32>();
        assert_eq!(rx.try_take(), None);
        tx.send(5);
        assert_eq!(rx.try_take(), Some(Ok(5)));
    }

    #[test]
    fn block_on_plain_future() {
        assert_eq!(block_on(async { 40 + 2 }), 42);
    }
}
