//! Regression tests for the reclamation watchdog (PR 6 bug class).
//!
//! The PR 6 repin-starvation bug: a thread whose pin path never runs
//! maintenance — nested pins skip `acquire`, and before the fix an inert
//! `repin` skipped maintenance too — accumulates deferred garbage without
//! bound (~130 MB per 2 M RMWs when it was live). The observability layer's
//! watchdog makes that class a first-class, release-build-visible signal:
//! a `csds_metrics::ebr_stall` counter + trace event fires every time a
//! thread's pending queue crosses the watchdog threshold without being
//! collected.
//!
//! These tests re-create the starvation shape with the production API (a
//! long-lived outer guard makes every inner pin nested, so no pin ever runs
//! maintenance — exactly the behaviour the `ebr.omit_repin_maintenance`
//! model knob re-introduces for the checker) and assert the watchdog fires;
//! the control asserts a healthy loop stays silent.

use csds_ebr::{health, pin, set_watchdog_threshold, Atomic};

/// Each spawned thread gets fresh thread-local metrics/EBR state, so the
/// scenarios don't contaminate each other (tests run in one process).
fn in_fresh_thread<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::spawn(f).join().unwrap()
}

/// Defer `n` drops while an outer guard keeps every inner pin nested —
/// the starved shape: no `acquire`, no repin maintenance, no collection.
fn churn_starved(n: usize) -> csds_metrics::StatsSnapshot {
    let _ = csds_metrics::take_and_reset();
    set_watchdog_threshold(64);
    let outer = pin();
    for i in 0..n {
        let g = pin(); // nested: never runs acquire()/maintenance
        let slot = Atomic::new(i as u64);
        let s = slot.load(&g);
        // SAFETY: freshly allocated, unlinked, retired exactly once —
        // `Atomic` has no drop glue, so discarding `slot` leaves the
        // allocation to the deferred dropper.
        unsafe { g.defer_drop(s) };
        drop(g);
    }
    drop(outer);
    csds_metrics::take_and_reset()
}

#[test]
fn watchdog_fires_under_repin_starvation() {
    let snap = in_fresh_thread(|| churn_starved(400));
    assert!(
        snap.ebr_stall_events >= 400 / 64,
        "starved thread crossed the 64-item threshold repeatedly but the \
         watchdog fired only {} times",
        snap.ebr_stall_events
    );
    // The starved phase must also be visible in the garbage gauges while it
    // is running; afterwards a healthy thread can drain the orphaned
    // backlog donated at the starved thread's exit.
    in_fresh_thread(|| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while health().garbage_items > 64 && std::time::Instant::now() < deadline {
            pin().flush();
            std::thread::yield_now();
        }
        let h = health();
        assert!(
            h.garbage_items <= 64,
            "orphaned starvation backlog never drained: {} items / {} bytes",
            h.garbage_items,
            h.garbage_bytes
        );
    });
}

#[test]
fn watchdog_stays_silent_on_healthy_churn() {
    let snap = in_fresh_thread(|| {
        let _ = csds_metrics::take_and_reset();
        // A healthy thread's pending count legitimately hovers around a few
        // bags' worth of items (open bag of 64 + sealed bags waiting out the
        // two-epoch grace period), so the threshold must sit above that
        // steady state — as the production default (4096) does. 512 keeps the
        // test sharp: starved churn of the same size would cross it.
        set_watchdog_threshold(512);
        for i in 0..2_000usize {
            let g = pin(); // top-level pin: amortized maintenance runs
            let slot = Atomic::new(i as u64);
            let s = slot.load(&g);
            // SAFETY: as in `churn_starved`.
            unsafe { g.defer_drop(s) };
            drop(g);
        }
        csds_metrics::take_and_reset()
    });
    assert_eq!(
        snap.ebr_stall_events, 0,
        "healthy single-guard churn must not trip the watchdog"
    );
    assert!(
        snap.ebr_collects > 0,
        "healthy churn should have run amortized collection passes"
    );
    assert!(snap.epoch_advances > 0, "epoch should advance under churn");
}

#[test]
fn health_reports_pinned_lag() {
    in_fresh_thread(|| {
        let _g = pin();
        let h = health();
        assert!(h.active_participants >= 1);
        assert!(h.pinned_participants >= 1);
        assert_eq!(h.pinned_lags.len(), h.pinned_participants);
        // This thread just pinned at the current epoch; its own lag is 0 or
        // 1 (an advance may race), so max lag only exceeds that if some
        // other test's thread is stalled — don't assert an upper bound.
    });
}
