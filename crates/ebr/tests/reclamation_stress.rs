//! Reclamation stress tests for the EBR substrate.
//!
//! Two properties, exercised under thread churn:
//!
//! 1. **completeness** — every retired node is eventually freed, including
//!    garbage donated through the orphan path by exiting threads;
//! 2. **safety** — no node is freed while a guard that could still reach it
//!    is live (readers continuously validate a canary word, and a dedicated
//!    blocked-reader test asserts a zero drop count while pinned).

use csds_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csds_ebr::{pin, Atomic, Shared};

/// Churn pin+flush on the calling thread until `pred` holds.
fn churn_until(pred: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        {
            let g = pin();
            g.flush();
        }
        if pred() {
            return true;
        }
        std::thread::yield_now();
    }
    pred()
}

#[test]
fn every_retired_node_is_eventually_freed() {
    static ALLOCATED: AtomicUsize = AtomicUsize::new(0);
    static DROPPED: AtomicUsize = AtomicUsize::new(0);

    struct Counted;
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPPED.fetch_add(1, Ordering::SeqCst);
        }
    }

    const THREADS: usize = 4;
    // Miri interprets every access; scale the churn down to stay inside the
    // CI timebox while native runs keep full pressure.
    const PER_THREAD: usize = if cfg!(miri) { 128 } else { 2_000 };

    // Each worker retires nodes under its own pins and then exits without
    // flushing, forcing the leftovers through the orphan-donation path.
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for i in 0..PER_THREAD {
                    let g = pin();
                    ALLOCATED.fetch_add(1, Ordering::SeqCst);
                    let s = Shared::boxed(Counted);
                    // SAFETY: never published; unique, retired once.
                    unsafe { g.defer_drop(s) };
                    drop(g);
                    if i % 512 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let target = THREADS * PER_THREAD;
    assert_eq!(ALLOCATED.load(Ordering::SeqCst), target);
    assert!(
        churn_until(
            || DROPPED.load(Ordering::SeqCst) == target,
            Duration::from_secs(30),
        ),
        "leaked retired nodes: dropped {} of {target}",
        DROPPED.load(Ordering::SeqCst)
    );
}

#[test]
fn a_long_lived_repinning_guard_reclaims_its_own_garbage() {
    // Regression: maintenance used to run only on the top-level pin path,
    // so a session holding one guard and calling `repin` between
    // operations (the `MapHandle` hot path) never advanced the epoch or
    // collected — a handle-driven update loop accumulated every retired
    // node until the handle dropped (~130 MB per 2M ops, with the
    // allocator degradation to match). Repins now share the pin path's
    // amortized maintenance counter, so the backlog must drain while the
    // guard stays live.
    static DROPPED: AtomicUsize = AtomicUsize::new(0);

    struct Counted;
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPPED.fetch_add(1, Ordering::SeqCst);
        }
    }

    const OPS: usize = if cfg!(miri) { 512 } else { 50_000 };
    std::thread::spawn(|| {
        let mut g = pin();
        for _ in 0..OPS {
            let s = Shared::boxed(Counted);
            // SAFETY: never published; unique, retired once.
            unsafe { g.defer_drop(s) };
            g.repin();
        }
        let freed_while_live = DROPPED.load(Ordering::SeqCst);
        drop(g);
        assert!(
            freed_while_live >= OPS / 2,
            "repin path never collected: {freed_while_live} of {OPS} freed \
             while the guard was live"
        );
    })
    .join()
    .unwrap();
}

#[test]
fn nothing_is_freed_while_a_guard_can_reach_it() {
    static DROPPED: AtomicUsize = AtomicUsize::new(0);

    struct Blocked;
    impl Drop for Blocked {
        fn drop(&mut self) {
            DROPPED.fetch_add(1, Ordering::SeqCst);
        }
    }

    // Reader pins and holds; every retirement below happens while the
    // reader could still (in principle) reach the node.
    let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
    let reader = std::thread::spawn(move || {
        let _g = pin();
        ready_tx.send(()).unwrap();
        hold_rx.recv().unwrap();
    });
    ready_rx.recv().unwrap();

    const RETIRED: usize = if cfg!(miri) { 64 } else { 500 };
    {
        let g = pin();
        for _ in 0..RETIRED {
            let s = Shared::boxed(Blocked);
            // SAFETY: unique allocation, retired once.
            unsafe { g.defer_drop(s) };
        }
        g.flush();
    }
    // Try hard to reclaim; the pinned reader must hold everything back.
    for _ in 0..64 {
        let g = pin();
        g.flush();
    }
    assert_eq!(
        DROPPED.load(Ordering::SeqCst),
        0,
        "nodes freed under a live guard"
    );

    hold_tx.send(()).unwrap();
    reader.join().unwrap();
    assert!(
        churn_until(
            || DROPPED.load(Ordering::SeqCst) == RETIRED,
            Duration::from_secs(30),
        ),
        "dropped {} of {RETIRED} after release",
        DROPPED.load(Ordering::SeqCst)
    );
}

/// Readers continuously dereference epoch-protected nodes and validate a
/// canary while writers swap and retire them. A premature free shows up as
/// a corrupted canary (in practice) long before anything else.
#[test]
fn canary_survives_concurrent_swap_and_retire() {
    const CANARY: u64 = 0xDEAD_BEEF_CAFE_F00D;
    const SLOTS: usize = 8;
    const WRITER_OPS: usize = if cfg!(miri) { 200 } else { 4_000 };

    struct Node {
        canary: u64,
        payload: u64,
    }

    let slots: Arc<Vec<Atomic<Node>>> = Arc::new(
        (0..SLOTS)
            .map(|i| {
                Atomic::new(Node {
                    canary: CANARY,
                    payload: i as u64,
                })
            })
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let slots = Arc::clone(&slots);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checksum = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = pin();
                    for slot in slots.iter() {
                        let s = slot.load(&g);
                        // SAFETY: loaded under the pin guard.
                        let n = unsafe { s.deref() };
                        assert_eq!(n.canary, CANARY, "use-after-free detected");
                        checksum = checksum.wrapping_add(n.payload);
                    }
                }
                checksum
            })
        })
        .collect();

    {
        let writer_slots = Arc::clone(&slots);
        for op in 0..WRITER_OPS {
            let g = pin();
            let idx = op % SLOTS;
            let fresh = Shared::boxed(Node {
                canary: CANARY,
                payload: op as u64,
            });
            let old = writer_slots[idx].swap(fresh, &g);
            // SAFETY: `old` was just unlinked from the only shared slot
            // holding it, and is retired exactly once.
            unsafe { g.defer_drop(old) };
            if op % 256 == 0 {
                std::thread::yield_now();
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // Teardown: retire the final nodes through the normal path.
    {
        let g = pin();
        for slot in slots.iter() {
            let last = slot.swap(Shared::null(), &g);
            // SAFETY: unlinked above; unique retire.
            unsafe { g.defer_drop(last) };
        }
        g.flush();
    }
}
