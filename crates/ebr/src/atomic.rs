//! Tagged atomic pointers for epoch-protected data structures.
//!
//! [`Atomic<T>`] is an atomic pointer to a heap-allocated `T`, loadable only
//! under a pin [`Guard`]. [`Shared<'g, T>`] is the loaded value: a possibly
//! tagged, possibly null pointer whose pointee is guaranteed live for the
//! guard's lifetime `'g`.
//!
//! The low `log2(align_of::<T>())` bits of the pointer are available as a
//! **tag**. Harris's lock-free list stores its logical-deletion mark there;
//! other structures use tags for flags on links.

use std::marker::PhantomData;

use csds_sync::atomic::{AtomicUsize, Ordering};

use crate::Guard;

#[inline]
fn tag_mask<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

/// An atomic, taggable pointer to a heap-allocated `T`.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: Atomic<T> hands out &T across threads (via Shared), so T must be
// Sync; ownership of T can move to whichever thread reclaims it, so Send.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> Atomic<T> {
    /// A null pointer (tag 0).
    pub const fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocate `value` on the heap and point at it (tag 0).
    pub fn new(value: T) -> Self {
        let raw = Box::into_raw(Box::new(value)) as usize;
        Atomic {
            data: AtomicUsize::new(raw),
            _marker: PhantomData,
        }
    }

    /// Load with `Acquire`; the guard certifies the pointee stays live.
    #[inline]
    pub fn load<'g>(&self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.data.load(Ordering::Acquire),
            _marker: PhantomData,
        }
    }

    /// Store with `Release`.
    #[inline]
    pub fn store(&self, new: Shared<'_, T>) {
        self.data.store(new.data, Ordering::Release);
    }

    /// Compare-and-swap (`AcqRel` on success). On failure returns the value
    /// actually found.
    #[inline]
    pub fn compare_exchange<'g>(
        &self,
        current: Shared<'_, T>,
        new: Shared<'_, T>,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, Shared<'g, T>> {
        match self.data.compare_exchange(
            current.data,
            new.data,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(v) => Ok(Shared {
                data: v,
                _marker: PhantomData,
            }),
            Err(v) => Err(Shared {
                data: v,
                _marker: PhantomData,
            }),
        }
    }

    /// Unconditional swap (`AcqRel`).
    #[inline]
    pub fn swap<'g>(&self, new: Shared<'_, T>, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.data.swap(new.data, Ordering::AcqRel),
            _marker: PhantomData,
        }
    }

    /// Raw untyped load (`Relaxed`). For destructors and diagnostics only.
    pub fn load_raw(&self) -> usize {
        self.data.load(Ordering::Relaxed)
    }

    /// Expose the underlying atomic word. Used by the HTM emulation, whose
    /// transactional read/write sets operate on `&AtomicUsize`.
    pub fn as_raw_atomic(&self) -> &AtomicUsize {
        &self.data
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:#x})", self.load_raw())
    }
}

/// A tagged shared pointer valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub const fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Heap-allocate `value` and return an (unpublished) shared pointer to
    /// it. Until published via a successful store/CAS, the caller owns the
    /// allocation and must free it on failure with [`Shared::into_box`].
    pub fn boxed(value: T) -> Self {
        Shared {
            data: Box::into_raw(Box::new(value)) as usize,
            _marker: PhantomData,
        }
    }

    /// Reconstruct from a raw word (as produced by [`Shared::as_raw`]).
    ///
    /// # Safety
    /// `data` must be null or a pointer obtained from this module whose
    /// pointee is valid for `'g`.
    pub unsafe fn from_raw(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    /// The raw word: pointer bits plus tag.
    pub fn as_raw(&self) -> usize {
        self.data
    }

    /// Pointer bits only (tag cleared).
    pub fn as_untagged_raw(&self) -> usize {
        self.data & !tag_mask::<T>()
    }

    /// Whether the pointer bits are null (ignores the tag).
    pub fn is_null(&self) -> bool {
        self.as_untagged_raw() == 0
    }

    /// The tag stored in the low bits.
    pub fn tag(&self) -> usize {
        self.data & tag_mask::<T>()
    }

    /// Same pointer with the tag replaced by `tag`.
    pub fn with_tag(&self, tag: usize) -> Self {
        debug_assert!(tag <= tag_mask::<T>(), "tag does not fit alignment bits");
        Shared {
            data: self.as_untagged_raw() | (tag & tag_mask::<T>()),
            _marker: PhantomData,
        }
    }

    /// Dereference.
    ///
    /// # Safety
    /// The pointer must be non-null, and the pointee must not have been
    /// retired before the guard that produced this `Shared` was pinned.
    pub unsafe fn deref(&self) -> &'g T {
        debug_assert!(!self.is_null());
        &*(self.as_untagged_raw() as *const T)
    }

    /// Dereference if non-null.
    ///
    /// # Safety
    /// Same contract as [`Shared::deref`].
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        if self.is_null() {
            None
        } else {
            Some(self.deref())
        }
    }

    /// Reclaim ownership of an **unpublished or fully unlinked** allocation.
    ///
    /// # Safety
    /// The caller must be the unique owner (e.g. a CAS publishing this
    /// pointer failed, or the structure is being dropped with `&mut self`).
    pub unsafe fn into_box(self) -> Box<T> {
        debug_assert!(!self.is_null());
        Box::from_raw(self.as_untagged_raw() as *mut T)
    }
}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Shared({:#x}, tag={})",
            self.as_untagged_raw(),
            self.tag()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pin;

    #[test]
    fn null_and_tag_roundtrip() {
        let s = Shared::<u64>::null();
        assert!(s.is_null());
        assert_eq!(s.tag(), 0);
        let t = s.with_tag(1);
        assert!(t.is_null(), "tagging must not make null look non-null");
        assert_eq!(t.tag(), 1);
    }

    #[test]
    fn boxed_deref_and_reclaim() {
        let s = Shared::boxed(42u64);
        // SAFETY: unpublished unique allocation.
        unsafe {
            assert_eq!(*s.deref(), 42);
            assert_eq!(*s.into_box(), 42);
        }
    }

    #[test]
    fn atomic_store_load() {
        let g = pin();
        let a = Atomic::<u64>::null();
        assert!(a.load(&g).is_null());
        let s = Shared::boxed(7u64);
        a.store(s);
        let l = a.load(&g);
        // SAFETY: just stored, alive under pin.
        unsafe { assert_eq!(*l.deref(), 7) };
        // Clean up (sole owner).
        a.store(Shared::null());
        // SAFETY: unlinked above, unique owner.
        unsafe { drop(l.into_box()) };
    }

    #[test]
    fn cas_success_and_failure() {
        let g = pin();
        let a = Atomic::<u64>::new(1);
        let cur = a.load(&g);
        let newer = Shared::boxed(2u64);
        assert!(a.compare_exchange(cur, newer, &g).is_ok());
        let stale = cur;
        let another = Shared::boxed(3u64);
        let err = a.compare_exchange(stale, another, &g).unwrap_err();
        // SAFETY: `newer` is what lives in the cell now.
        unsafe { assert_eq!(*err.deref(), 2) };
        // Failed publish: we still own `another`.
        unsafe { drop(another.into_box()) };
        // Teardown.
        let last = a.load(&g);
        a.store(Shared::null());
        // SAFETY: unlinked, unique owner; `cur` (value 1) too.
        unsafe {
            drop(last.into_box());
            drop(cur.into_box());
        }
    }

    #[test]
    fn tags_survive_cas() {
        let g = pin();
        let a = Atomic::<u64>::new(5);
        let cur = a.load(&g);
        assert_eq!(cur.tag(), 0);
        // Mark the pointer (Harris-style logical deletion).
        assert!(a.compare_exchange(cur, cur.with_tag(1), &g).is_ok());
        let marked = a.load(&g);
        assert_eq!(marked.tag(), 1);
        assert_eq!(marked.as_untagged_raw(), cur.as_untagged_raw());
        // SAFETY: same allocation.
        unsafe { assert_eq!(*marked.deref(), 5) };
        a.store(Shared::null());
        // SAFETY: unlinked, unique owner.
        unsafe { drop(marked.into_box()) };
    }

    #[test]
    fn alignment_gives_tag_bits() {
        assert_eq!(tag_mask::<u64>(), 7);
        assert!(tag_mask::<u8>() == 0);
    }
}
