//! Epoch-based memory reclamation (EBR), built from scratch.
//!
//! The paper's implementations "use an epoch-based memory management scheme,
//! similar in principle to RCU" (§3.2). This crate is that substrate:
//!
//! * a global epoch counter and a registry of per-thread participant slots;
//! * [`pin`] returns a [`Guard`]; while a guard is live, the thread is
//!   *pinned* at an epoch and may dereference shared pointers loaded from
//!   [`Atomic`] cells;
//! * removed nodes are retired with [`Guard::defer_drop`]; they are freed
//!   once the global epoch has advanced far enough that no pinned thread can
//!   still hold a reference (the classic three-generation argument);
//! * [`Shared`] pointers carry **tag bits** in their low-order alignment
//!   bits — the Harris list's logical-deletion mark, at zero space cost.
//!
//! # Safety argument (sketch)
//!
//! A thread pinned at epoch `e` keeps the global epoch from advancing past
//! `e + 1`. An object retired during a pin session at epoch `e` is tagged
//! `e + 1`, an upper bound for the global epoch at unlink time; every thread
//! that could have loaded a reference to the object was pinned at some epoch
//! `p ≤ e + 1` and therefore blocks the advance `p → p + 1`. Hence once the
//! global epoch reaches `tag + 2`, no such thread is still pinned, and the
//! object can be dropped.
//!
//! Threads that exit donate their unreclaimed garbage to a global orphan
//! list, collected during later maintenance by any surviving thread.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

mod atomic;

pub use atomic::{Atomic, Shared};

/// A type-erased deferred destructor.
struct Deferred {
    ptr: *mut u8,
    dropper: unsafe fn(*mut u8),
}

// SAFETY: a Deferred is only ever executed once, by whichever thread runs
// collection; the pointee was unlinked from all shared structures before
// being retired, so ownership is unique.
unsafe impl Send for Deferred {}

impl Deferred {
    /// # Safety
    /// `ptr` must be a uniquely-owned `Box<T>`-allocated pointer.
    unsafe fn new<T>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut u8) {
            drop(Box::from_raw(p as *mut T));
        }
        Deferred { ptr: ptr as *mut u8, dropper: drop_box::<T> }
    }

    fn execute(self) {
        // SAFETY: by construction, `ptr` is a unique Box allocation and this
        // is the only execution of the dropper.
        unsafe { (self.dropper)(self.ptr) }
    }
}

struct Bag {
    epoch: u64,
    items: Vec<Deferred>,
}

/// Per-thread participant record, shared between the thread-local handle and
/// the global registry.
struct Slot {
    /// 0 when not pinned, `(epoch << 1) | 1` when pinned at `epoch`.
    state: AtomicU64,
    /// Cleared when the owning thread exits; the registry skips and prunes
    /// inactive slots.
    active: AtomicBool,
}

struct Collector {
    epoch: AtomicU64,
    registry: Mutex<Vec<Arc<Slot>>>,
    orphans: Mutex<Vec<Bag>>,
}

impl Collector {
    fn new() -> Self {
        Collector {
            epoch: AtomicU64::new(0),
            registry: Mutex::new(Vec::new()),
            orphans: Mutex::new(Vec::new()),
        }
    }

    fn register(&self) -> Arc<Slot> {
        let slot =
            Arc::new(Slot { state: AtomicU64::new(0), active: AtomicBool::new(true) });
        self.registry.lock().unwrap().push(Arc::clone(&slot));
        slot
    }

    /// Attempt to advance the global epoch. Returns the (possibly advanced)
    /// global epoch. Also prunes registry entries of exited threads.
    fn try_advance(&self) -> u64 {
        let global = self.epoch.load(Ordering::SeqCst);
        let Ok(mut registry) = self.registry.try_lock() else {
            return global;
        };
        registry.retain(|s| s.active.load(Ordering::Acquire));
        for slot in registry.iter() {
            let s = slot.state.load(Ordering::SeqCst);
            if s & 1 == 1 && (s >> 1) != global {
                return global; // someone is pinned at an older epoch
            }
        }
        drop(registry);
        match self.epoch.compare_exchange(
            global,
            global + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => global + 1,
            Err(cur) => cur,
        }
    }

    /// Execute orphaned garbage that is old enough.
    fn collect_orphans(&self, global: u64) {
        let ready: Vec<Bag> = {
            let Ok(mut orphans) = self.orphans.try_lock() else { return };
            let mut ready = Vec::new();
            let mut i = 0;
            while i < orphans.len() {
                if orphans[i].epoch + 2 <= global {
                    ready.push(orphans.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        for bag in ready {
            for d in bag.items {
                d.execute();
            }
        }
    }
}

fn collector() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// Seal the current open bag every time it grows past this many items.
const BAG_SEAL_THRESHOLD: usize = 64;
/// Run maintenance (advance + collect) every this many pin operations.
const MAINTENANCE_PERIOD: u64 = 64;

struct Local {
    slot: Arc<Slot>,
    guard_depth: Cell<usize>,
    pin_epoch: Cell<u64>,
    pin_count: Cell<u64>,
    /// Open bag: items retired during recent pin sessions, tagged `epoch`.
    open: RefCell<Vec<Deferred>>,
    open_epoch: Cell<u64>,
    sealed: RefCell<VecDeque<Bag>>,
}

impl Local {
    fn new() -> Self {
        Local {
            slot: collector().register(),
            guard_depth: Cell::new(0),
            pin_epoch: Cell::new(0),
            pin_count: Cell::new(0),
            open: RefCell::new(Vec::new()),
            open_epoch: Cell::new(0),
            sealed: RefCell::new(VecDeque::new()),
        }
    }

    fn seal_open(&self) {
        let mut open = self.open.borrow_mut();
        if !open.is_empty() {
            let items = std::mem::take(&mut *open);
            self.sealed.borrow_mut().push_back(Bag { epoch: self.open_epoch.get(), items });
        }
    }

    fn defer(&self, d: Deferred) {
        // Tag = pin_epoch + 1: an upper bound on the global epoch at unlink
        // time (see module docs).
        let tag = self.pin_epoch.get() + 1;
        if self.open_epoch.get() != tag {
            self.seal_open();
            self.open_epoch.set(tag);
        }
        self.open.borrow_mut().push(d);
        if self.open.borrow().len() >= BAG_SEAL_THRESHOLD {
            self.seal_open();
        }
    }

    fn collect_sealed(&self, global: u64) {
        loop {
            let bag = {
                let mut sealed = self.sealed.borrow_mut();
                match sealed.front() {
                    Some(b) if b.epoch + 2 <= global => sealed.pop_front(),
                    _ => None,
                }
            };
            match bag {
                Some(b) => {
                    for d in b.items {
                        d.execute();
                    }
                }
                None => break,
            }
        }
    }

    fn maintenance(&self) {
        let c = collector();
        let global = c.try_advance();
        self.collect_sealed(global);
        c.collect_orphans(global);
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Thread exit: unpin, deactivate, donate garbage to the orphan list.
        self.slot.state.store(0, Ordering::SeqCst);
        self.slot.active.store(false, Ordering::Release);
        self.seal_open();
        let bags: Vec<Bag> = self.sealed.borrow_mut().drain(..).collect();
        if !bags.is_empty() {
            collector().orphans.lock().unwrap().extend(bags);
        }
    }
}

thread_local! {
    static LOCAL: Local = Local::new();
}

/// An RAII token proving the current thread is pinned.
///
/// While any guard is live, every [`Shared`] loaded through it remains valid
/// (not freed), even if concurrently unlinked and retired by other threads.
/// Guards are not `Send`.
pub struct Guard {
    pinned: bool,
    _not_send: std::marker::PhantomData<*mut ()>,
}

/// Pin the current thread and return a guard.
pub fn pin() -> Guard {
    LOCAL.with(|l| {
        let depth = l.guard_depth.get();
        if depth == 0 {
            let c = collector();
            let mut e = c.epoch.load(Ordering::Relaxed);
            loop {
                l.slot.state.store((e << 1) | 1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                let now = c.epoch.load(Ordering::SeqCst);
                if now == e {
                    break;
                }
                e = now;
            }
            l.pin_epoch.set(e);
            let n = l.pin_count.get() + 1;
            l.pin_count.set(n);
            l.guard_depth.set(1);
            if n % MAINTENANCE_PERIOD == 0 {
                l.maintenance();
            }
        } else {
            l.guard_depth.set(depth + 1);
        }
    });
    Guard { pinned: true, _not_send: std::marker::PhantomData }
}

/// Returns a guard that does **not** pin the thread.
///
/// # Safety
///
/// The caller must guarantee no other thread is concurrently accessing the
/// data structure (e.g. inside `Drop` with `&mut self`). Items retired
/// through an unprotected guard are dropped immediately.
pub unsafe fn unprotected() -> Guard {
    Guard { pinned: false, _not_send: std::marker::PhantomData }
}

impl Guard {
    /// Retire the pointee: it will be dropped (as a `Box<T>`) once no pinned
    /// thread can still reference it.
    ///
    /// # Safety
    ///
    /// * `shared` must have been allocated as `Box<T>` (e.g. via
    ///   [`Shared::boxed`] / [`Atomic::new`]) and must not be null;
    /// * it must be unreachable for threads that pin *after* this call
    ///   (i.e. already unlinked from the shared structure);
    /// * it must be retired exactly once.
    pub unsafe fn defer_drop<T>(&self, shared: Shared<'_, T>) {
        debug_assert!(!shared.is_null());
        let d = Deferred::new(shared.as_untagged_raw() as *mut T);
        if self.pinned {
            LOCAL.with(|l| l.defer(d));
        } else {
            // Unprotected: sole-owner contract lets us drop right away.
            d.execute();
        }
    }

    /// Force a maintenance round (epoch advance attempt + collection).
    /// Useful in tests and teardown paths.
    pub fn flush(&self) {
        if self.pinned {
            LOCAL.with(|l| {
                l.seal_open();
                l.maintenance();
            });
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.pinned {
            return;
        }
        LOCAL.with(|l| {
            let depth = l.guard_depth.get();
            l.guard_depth.set(depth - 1);
            if depth == 1 {
                l.slot.state.store(0, Ordering::SeqCst);
            }
        });
    }
}

/// Current global epoch (for tests and diagnostics).
pub fn global_epoch() -> u64 {
    collector().epoch.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Counted(#[allow(dead_code)] u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pin_unpin_tracks_depth() {
        let g1 = pin();
        let g2 = pin(); // nested
        drop(g2);
        drop(g1);
        LOCAL.with(|l| assert_eq!(l.guard_depth.get(), 0));
    }

    /// Pin/flush in a loop (sleeping between rounds) until `pred` holds or a
    /// generous timeout expires. Other tests may hold pins concurrently, so
    /// reclamation progress is eventual, not immediate.
    fn churn_until(pred: impl Fn() -> bool) -> bool {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            {
                let g = pin();
                g.flush();
            }
            if pred() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        pred()
    }

    #[test]
    fn epoch_advances_when_unpinned() {
        let e0 = global_epoch();
        assert!(churn_until(|| global_epoch() > e0), "epoch never advanced");
    }

    #[test]
    fn deferred_drop_eventually_runs() {
        DROPS.store(0, Ordering::SeqCst);
        {
            let g = pin();
            for i in 0..10 {
                let s = Shared::boxed(Counted(i));
                // SAFETY: never published; unique, retired once.
                unsafe { g.defer_drop(s) };
            }
            g.flush();
        }
        assert!(churn_until(|| DROPS.load(Ordering::SeqCst) >= 10));
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        static BLOCK_DROPS: AtomicUsize = AtomicUsize::new(0);
        struct B;
        impl Drop for B {
            fn drop(&mut self) {
                BLOCK_DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        // A long-lived reader on another thread pins an epoch...
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let reader = std::thread::spawn(move || {
            let _g = pin();
            ready_tx.send(()).unwrap();
            rx.recv().unwrap(); // hold the pin until told to stop
        });
        ready_rx.recv().unwrap();

        {
            let g = pin();
            let s = Shared::boxed(B);
            // SAFETY: unique allocation, retired once.
            unsafe { g.defer_drop(s) };
            g.flush();
        }
        // While the reader is pinned, the epoch cannot advance by 2, so the
        // object must not be dropped no matter how hard we try.
        for _ in 0..8 {
            let g = pin();
            g.flush();
        }
        assert_eq!(BLOCK_DROPS.load(Ordering::SeqCst), 0, "freed under a pinned reader");

        tx.send(()).unwrap();
        reader.join().unwrap();
        assert!(churn_until(|| BLOCK_DROPS.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn orphaned_garbage_from_exited_thread_is_collected() {
        static ORPHAN_DROPS: AtomicUsize = AtomicUsize::new(0);
        struct O;
        impl Drop for O {
            fn drop(&mut self) {
                ORPHAN_DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        std::thread::spawn(|| {
            let g = pin();
            let s = Shared::boxed(O);
            // SAFETY: unique allocation, retired once.
            unsafe { g.defer_drop(s) };
            // Thread exits without collecting; garbage becomes orphaned.
        })
        .join()
        .unwrap();
        assert!(churn_until(|| ORPHAN_DROPS.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn unprotected_drops_immediately() {
        DROPS.store(0, Ordering::SeqCst);
        // SAFETY: single-threaded test, no concurrent structure access.
        let g = unsafe { unprotected() };
        let s = Shared::boxed(Counted(7));
        let before = DROPS.load(Ordering::SeqCst);
        // SAFETY: unique allocation, retired once.
        unsafe { g.defer_drop(s) };
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }
}
