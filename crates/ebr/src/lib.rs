//! Epoch-based memory reclamation (EBR), built from scratch.
//!
//! The paper's implementations "use an epoch-based memory management scheme,
//! similar in principle to RCU" (§3.2). This crate is that substrate:
//!
//! * a global epoch counter and a **lock-free registry** of per-thread
//!   participant slots (CAS push; slots of exited threads are logically
//!   deleted and physically recycled by later registrations);
//! * [`pin`] returns a [`Guard`]; while a guard is live, the thread is
//!   *pinned* at an epoch and may dereference shared pointers loaded from
//!   [`Atomic`] cells;
//! * removed nodes are retired with [`Guard::defer_drop`]; they are freed
//!   once the global epoch has advanced far enough that no pinned thread can
//!   still hold a reference (the classic three-generation argument);
//! * [`Shared`] pointers carry **tag bits** in their low-order alignment
//!   bits — the Harris list's logical-deletion mark, at zero space cost.
//!
//! # Fast-path design
//!
//! Every operation of every structure in this workspace pins, so the pin
//! fast path is engineered down to the minimum the memory model permits:
//!
//! * publication is a `Relaxed` store of the slot state followed by a single
//!   `SeqCst` fence and a `Relaxed` validation load of the global epoch —
//!   the only sequentially consistent synchronization on the path; unpin is
//!   a plain `Release` store. (An earlier iteration kept threads *lazily*
//!   pinned across guard drops so a repin at an unchanged epoch could skip
//!   the fence. Measured on `fig0_substrate`, that made pin/unpin 4× faster
//!   — and made every *structure* slower, up to 12× for the hash table:
//!   any thread that pins once and then goes idle stalls the epoch for
//!   everyone, and benchmarks, servers and thread pools all have such
//!   threads. There is no sound way for an advancer to ignore a lazy pin,
//!   because the reusing thread would have to re-validate with exactly the
//!   fence being skipped. So guards always unpin; the sound remnant of the
//!   idea is [`Guard::repin`], which skips the fence while a guard is
//!   *live*, where the slot really is continuously published.)
//! * each participant `Slot` is padded to 128 bytes so pin publication
//!   never false-shares with a neighbouring slot;
//! * retired nodes go into a **fixed-capacity inline bag** (no allocation
//!   per retirement, a single `RefCell` borrow, never nested); full bags
//!   are sealed into a flat Vec-backed ring. Epoch advance + collection
//!   runs amortized behind the `MAINTENANCE_PERIOD` pin counter, and the
//!   registry scan is skipped when neither this thread nor the orphan
//!   stack holds garbage.
//!
//! # Safety argument (sketch)
//!
//! A thread pinned at epoch `e` keeps the global epoch from advancing past
//! `e + 1`. An object retired during a pin session at epoch `e` is tagged
//! `e + 1`, an upper bound for the global epoch at unlink time; every thread
//! that could have loaded a reference to the object was pinned at some epoch
//! `p ≤ e + 1` and therefore blocks the advance `p → p + 1`. Hence once the
//! global epoch reaches `tag + 2`, no such thread is still pinned, and the
//! object can be dropped.
//!
//! [`Guard::repin`] only ever *extends* a live, continuously published pin
//! session (staying at the current epoch is what every pinned thread does
//! anyway), so it preserves the invariant above.
//!
//! Threads that exit donate their unreclaimed garbage to a global lock-free
//! orphan stack, collected during later maintenance by any surviving thread.

use std::cell::{Cell, RefCell};
use std::ptr;

use csds_sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, LazyStatic, Ordering};

mod atomic;

pub use atomic::{Atomic, Shared};

/// Pad-to-cache-line wrapper (128 bytes covers the adjacent-line prefetcher
/// pair on x86 and the native 128-byte lines on some ARM/POWER parts).
#[repr(align(128))]
struct CacheAligned<T>(T);

/// A type-erased deferred destructor.
struct Deferred {
    ptr: *mut u8,
    dropper: unsafe fn(*mut u8),
    /// `size_of::<T>()` of the retired allocation — approximate garbage
    /// accounting for the health telemetry (container overhead and heap
    /// payloads behind the value are not counted).
    bytes: usize,
}

// SAFETY: a Deferred is only ever executed once, by whichever thread runs
// collection; the pointee was unlinked from all shared structures before
// being retired, so ownership is unique.
unsafe impl Send for Deferred {}

impl Deferred {
    /// # Safety
    /// `ptr` must be a uniquely-owned `Box<T>`-allocated pointer.
    unsafe fn new<T>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut u8) {
            drop(Box::from_raw(p as *mut T));
        }
        Deferred {
            ptr: ptr as *mut u8,
            dropper: drop_box::<T>,
            bytes: std::mem::size_of::<T>(),
        }
    }

    fn execute(self) {
        // SAFETY: by construction, `ptr` is a unique Box allocation and this
        // is the only execution of the dropper.
        unsafe { (self.dropper)(self.ptr) }
    }
}

/// A sealed batch of retired objects, stamped with its retirement epoch.
struct Bag {
    epoch: u64,
    items: Vec<Deferred>,
}

/// Run one batch of deferred destructors, settling the process-wide
/// deferred-garbage gauges first (so a destructor that re-enters this
/// module observes the gauges already decremented).
fn execute_items(items: Vec<Deferred>) {
    let n = items.len() as i64;
    let bytes: usize = items.iter().map(|d| d.bytes).sum();
    csds_metrics::ebr_garbage_delta(-n, -(bytes as i64));
    for d in items {
        d.execute();
    }
}

/// Per-thread participant record. Cache-line padded: `state` is stored by
/// every pin and read by every registry scan, so one slot must never share
/// a line with another.
#[repr(align(128))]
struct Slot {
    /// 0 when not pinned, `(epoch << 1) | 1` when pinned at `epoch`.
    state: AtomicU64,
    /// Claimed by a live thread. Cleared on thread exit (logical delete);
    /// a later registration recycles the slot instead of growing the list.
    active: AtomicBool,
    /// Intrusive registry link; written once at push, immutable afterwards.
    next: AtomicPtr<Slot>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(0),
            active: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

/// Lock-free singly-linked registry of participant slots.
///
/// Push-only: nodes are never unlinked or freed (scans run with no
/// reclamation protection of their own, and EBR cannot bootstrap itself),
/// but exited threads' slots are *logically* deleted via [`Slot::active`]
/// and physically recycled by the next registration, so the list length is
/// bounded by the peak number of concurrently live threads.
struct Registry {
    head: CacheAligned<AtomicPtr<Slot>>,
}

impl Registry {
    const fn new() -> Registry {
        Registry {
            head: CacheAligned(AtomicPtr::new(ptr::null_mut())),
        }
    }

    /// Claim a recycled slot or CAS-push a fresh one. Lock-free.
    fn register(&self) -> &'static Slot {
        // First pass: try to reclaim a logically deleted slot.
        let mut p = self.head.0.load(Ordering::Acquire);
        // SAFETY: registry nodes are immortal (`Box::leak` below).
        while let Some(slot) = unsafe { p.as_ref() } {
            if !slot.active.load(Ordering::Relaxed)
                && slot
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                debug_assert_eq!(slot.state.load(Ordering::Relaxed), 0);
                return slot;
            }
            p = slot.next.load(Ordering::Relaxed);
        }
        // None free: push a new slot.
        let slot: &'static Slot = Box::leak(Box::new(Slot::new()));
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            slot.next.store(head, Ordering::Relaxed);
            match self.head.0.compare_exchange_weak(
                head,
                slot as *const Slot as *mut Slot,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return slot,
                Err(h) => head = h,
            }
        }
    }

    /// Iterate all slots (including inactive ones).
    fn iter(&self) -> impl Iterator<Item = &'static Slot> {
        let mut p = self.head.0.load(Ordering::Acquire);
        std::iter::from_fn(move || {
            // SAFETY: registry nodes are immortal.
            let slot = unsafe { p.as_ref() }?;
            p = slot.next.load(Ordering::Relaxed);
            Some(slot)
        })
    }
}

/// One donation of orphaned garbage (all the bags of one exited thread).
struct OrphanNode {
    bags: Vec<Bag>,
    next: *mut OrphanNode,
}

/// Lock-free Treiber stack of orphaned garbage donations.
struct OrphanList {
    head: CacheAligned<AtomicPtr<OrphanNode>>,
}

// SAFETY: OrphanNode chains are transferred wholesale between threads
// through the atomic head; their contents (Bags of Deferred) are Send.
unsafe impl Send for OrphanList {}
unsafe impl Sync for OrphanList {}

impl OrphanList {
    const fn new() -> OrphanList {
        OrphanList {
            head: CacheAligned(AtomicPtr::new(ptr::null_mut())),
        }
    }

    /// Cheap emptiness probe so maintenance can skip the collection pass.
    fn is_empty(&self) -> bool {
        self.head.0.load(Ordering::Relaxed).is_null()
    }

    fn donate(&self, bags: Vec<Bag>) {
        if bags.is_empty() {
            return;
        }
        let node = Box::into_raw(Box::new(OrphanNode {
            bags,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours until the successful CAS publishes it.
            unsafe { (*node).next = head };
            match self.head.0.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Steal the whole stack, free what `global` permits, re-donate the rest.
    fn collect(&self, global: u64) {
        if self.is_empty() {
            return;
        }
        let mut p = self.head.0.swap(ptr::null_mut(), Ordering::Acquire);
        let mut ready: Vec<Bag> = Vec::new();
        let mut unready: Vec<Bag> = Vec::new();
        while !p.is_null() {
            // SAFETY: the swap made this chain exclusively ours.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
            for bag in node.bags {
                if bag.epoch + 2 <= global {
                    ready.push(bag);
                } else {
                    unready.push(bag);
                }
            }
        }
        self.donate(unready);
        for bag in ready {
            execute_items(bag.items);
        }
    }
}

struct Collector {
    epoch: CacheAligned<AtomicU64>,
    registry: Registry,
    orphans: OrphanList,
}

impl Collector {
    fn new() -> Self {
        Collector {
            epoch: CacheAligned(AtomicU64::new(0)),
            registry: Registry::new(),
            orphans: OrphanList::new(),
        }
    }

    /// Attempt to advance the global epoch; returns the (possibly advanced)
    /// global epoch. Lock-free scan of the participant registry; inactive
    /// (logically deleted) slots are skipped.
    fn try_advance(&self) -> u64 {
        let global = self.epoch.0.load(Ordering::Relaxed);
        // Pairs with the fence in `Local::publish`: slot states read below
        // are at least as fresh as any publication that precedes this fence
        // in the total order of SeqCst operations.
        fence(Ordering::SeqCst);
        for slot in self.registry.iter() {
            if !slot.active.load(Ordering::Acquire) {
                continue;
            }
            let s = slot.state.load(Ordering::Relaxed);
            if s & 1 == 1 && (s >> 1) != global {
                return global; // someone is pinned at an older epoch
            }
        }
        match self
            .epoch
            .0
            .compare_exchange(global, global + 1, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => {
                csds_metrics::ebr_epoch_advance(global + 1);
                global + 1
            }
            Err(cur) => cur,
        }
    }
}

/// The process-wide collector. Declared through the seam's [`LazyStatic`] so
/// that under the model checker every explored execution starts from a fresh
/// epoch/registry/orphan state (leaked registry slots from prior executions
/// are abandoned, which is fine at model scale).
static GLOBAL: LazyStatic<Collector> = LazyStatic::new(Collector::new);

fn collector() -> &'static Collector {
    GLOBAL.get()
}

/// Capacity of the inline open bag; sealing happens when it fills.
const BAG_CAP: usize = 64;
/// Run maintenance (advance + collect) every this many pin operations.
const MAINTENANCE_PERIOD: u64 = 64;
/// Default reclamation-watchdog threshold (pending deferred items): well
/// above the steady-state backlog of a healthy churning thread (a few
/// sealed bags, i.e. a few hundred items), well below the millions the PR 6
/// starvation bug accumulated.
pub const WATCHDOG_THRESHOLD_DEFAULT: u64 = 4096;

/// The effective maintenance period. In production this is the constant
/// above; under the model checker a model can shrink it (usually to 1) via
/// the `ebr.maintenance_period` config key, so that a handful of pins —
/// all an exhaustive exploration can afford — still exercise the
/// advance/collect path on every schedule.
#[inline]
fn maintenance_period() -> u64 {
    #[cfg(feature = "modelcheck")]
    if let Some(p) = csds_modelcheck::model_config_u64("ebr.maintenance_period") {
        return p.max(1);
    }
    MAINTENANCE_PERIOD
}

/// Flat Vec-backed ring buffer of sealed bags (oldest-first FIFO).
struct SealedRing {
    /// Power-of-two capacity; `None` marks an empty cell.
    buf: Vec<Option<Bag>>,
    head: usize,
    len: usize,
}

impl SealedRing {
    fn new() -> SealedRing {
        SealedRing {
            buf: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn grow(&mut self) {
        let old_cap = self.buf.len();
        let new_cap = (old_cap * 2).max(8);
        let mut buf: Vec<Option<Bag>> = Vec::with_capacity(new_cap);
        for i in 0..self.len {
            buf.push(self.buf[(self.head + i) & (old_cap - 1)].take());
        }
        buf.resize_with(new_cap, || None);
        self.buf = buf;
        self.head = 0;
    }

    fn push_back(&mut self, bag: Bag) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let mask = self.buf.len() - 1;
        let idx = (self.head + self.len) & mask;
        debug_assert!(self.buf[idx].is_none());
        self.buf[idx] = Some(bag);
        self.len += 1;
    }

    /// Epoch of the oldest sealed bag, if any.
    fn front_epoch(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.buf[self.head].as_ref().map(|b| b.epoch)
    }

    fn pop_front(&mut self) -> Option<Bag> {
        if self.len == 0 {
            return None;
        }
        let bag = self.buf[self.head].take();
        debug_assert!(bag.is_some());
        self.head = (self.head + 1) & (self.buf.len() - 1);
        self.len -= 1;
        bag
    }
}

/// The thread's garbage: a fixed-capacity inline open bag plus the ring of
/// sealed bags. Lives behind a single `RefCell`, borrowed at most once per
/// operation and never while destructors run.
struct LocalBags {
    open_epoch: u64,
    open_len: usize,
    open: [Option<Deferred>; BAG_CAP],
    sealed: SealedRing,
}

impl LocalBags {
    fn new() -> LocalBags {
        LocalBags {
            open_epoch: 0,
            open_len: 0,
            open: [const { None }; BAG_CAP],
            sealed: SealedRing::new(),
        }
    }

    fn has_garbage(&self) -> bool {
        self.open_len > 0 || !self.sealed.is_empty()
    }

    /// Move the open bag's contents into the sealed ring.
    fn seal_open(&mut self) {
        if self.open_len == 0 {
            return;
        }
        let mut items = Vec::with_capacity(self.open_len);
        for slot in self.open.iter_mut().take(self.open_len) {
            items.push(slot.take().expect("open bag slot in 0..open_len is filled"));
        }
        self.open_len = 0;
        self.sealed.push_back(Bag {
            epoch: self.open_epoch,
            items,
        });
    }

    /// Append one deferred destructor tagged `tag`; returns the sealed-bag
    /// count so the caller can decide whether to run early maintenance.
    fn push(&mut self, tag: u64, d: Deferred) -> usize {
        if self.open_epoch != tag {
            self.seal_open();
            self.open_epoch = tag;
        }
        self.open[self.open_len] = Some(d);
        self.open_len += 1;
        if self.open_len == BAG_CAP {
            self.seal_open();
        }
        self.sealed.len()
    }

    /// Drain everything (for orphan donation at thread exit).
    fn drain_all(&mut self) -> Vec<Bag> {
        self.seal_open();
        let mut bags = Vec::with_capacity(self.sealed.len());
        while let Some(bag) = self.sealed.pop_front() {
            bags.push(bag);
        }
        bags
    }
}

struct Local {
    slot: &'static Slot,
    guard_depth: Cell<usize>,
    /// Per-thread cache of the last-observed global epoch (the epoch of the
    /// current publication while pinned); lets [`Guard::repin`] skip the
    /// fence when the epoch has not moved.
    pin_epoch: Cell<u64>,
    pin_count: Cell<u64>,
    bags: RefCell<LocalBags>,
    /// Deferred destructors retired by this thread and not yet executed
    /// locally (orphan donations leave with the thread at exit).
    deferred_pending: Cell<u64>,
    /// Reclamation-watchdog threshold for this thread (items); see
    /// [`set_watchdog_threshold`].
    watchdog_threshold: Cell<u64>,
}

impl Local {
    fn new() -> Self {
        Local {
            slot: collector().registry.register(),
            guard_depth: Cell::new(0),
            pin_epoch: Cell::new(0),
            pin_count: Cell::new(0),
            bags: RefCell::new(LocalBags::new()),
            deferred_pending: Cell::new(0),
            watchdog_threshold: Cell::new(WATCHDOG_THRESHOLD_DEFAULT),
        }
    }

    /// Top-level pin: publish with the store + SeqCst fence.
    #[inline]
    fn acquire(&self) {
        let global = collector().epoch.0.load(Ordering::Relaxed);
        self.publish(global);
        self.guard_depth.set(1);
        let n = self.pin_count.get() + 1;
        self.pin_count.set(n);
        if n % maintenance_period() == 0 {
            self.maintenance(false);
        }
    }

    /// Publish the slot as pinned, starting from the epoch guess `e`. The
    /// store races with concurrent epoch advances, so validate and
    /// re-publish until the published epoch matches the global epoch.
    fn publish(&self, mut e: u64) {
        let c = collector();
        loop {
            self.slot.state.store((e << 1) | 1, Ordering::Relaxed);
            // The single SeqCst publication point on the pin path: orders
            // the state store before the validation load, pairing with the
            // fence in `try_advance` (see the module-level safety sketch).
            fence(Ordering::SeqCst);
            let now = c.epoch.0.load(Ordering::Relaxed);
            if now == e {
                break;
            }
            e = now;
        }
        self.pin_epoch.set(e);
    }

    #[inline]
    fn defer(&self, d: Deferred) {
        // Tag = pin_epoch + 1: an upper bound on the global epoch at unlink
        // time (see module docs). Collection is amortized purely behind the
        // MAINTENANCE_PERIOD pin counter: triggering extra maintenance on
        // queue depth degenerates into a registry scan per retirement
        // whenever a pinned thread is legitimately blocking the advance.
        let tag = self.pin_epoch.get() + 1;
        let bytes = d.bytes;
        let _sealed = self.bags.borrow_mut().push(tag, d);
        csds_metrics::ebr_garbage_delta(1, bytes as i64);
        // Reclamation watchdog: collection is amortized behind the pin
        // counter (above), so a thread whose pin path never runs maintenance
        // — the PR 6 repin-starvation class: two long-lived sessions on one
        // thread make every repin inert, or nested pins skip `acquire` — has
        // exactly one signal left: its pending queue keeps growing. Fire a
        // counter + trace event at every threshold multiple so the pathology
        // is release-build-visible long before it becomes a 130 MB
        // post-mortem.
        let pending = self.deferred_pending.get() + 1;
        self.deferred_pending.set(pending);
        if pending % self.watchdog_threshold.get() == 0 {
            csds_metrics::ebr_stall(pending);
        }
    }

    /// Free local sealed bags old enough under `global`. Bags are taken out
    /// of the ring before their destructors run, so a destructor that
    /// re-enters this module never observes a held borrow.
    fn collect_sealed(&self, global: u64) {
        loop {
            let bag = {
                let mut bags = self.bags.borrow_mut();
                match bags.sealed.front_epoch() {
                    Some(e) if e + 2 <= global => bags.sealed.pop_front(),
                    _ => None,
                }
            };
            match bag {
                Some(b) => {
                    self.deferred_pending.set(
                        self.deferred_pending
                            .get()
                            .saturating_sub(b.items.len() as u64),
                    );
                    execute_items(b.items);
                }
                None => break,
            }
        }
    }

    /// Amortized maintenance: attempt an epoch advance and collect. Unless
    /// `force`d, the registry scan is skipped entirely when neither this
    /// thread nor the orphan stack holds garbage.
    fn maintenance(&self, force: bool) {
        let c = collector();
        if !force && !self.bags.borrow().has_garbage() && c.orphans.is_empty() {
            return;
        }
        // Latency is only timed past the early-out, so the gauge measures
        // real passes (advance attempt + both collections), not no-ops.
        let start = std::time::Instant::now();
        let global = c.try_advance();
        self.collect_sealed(global);
        c.orphans.collect(global);
        csds_metrics::ebr_collect(start.elapsed().as_nanos() as u64);
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Thread exit: donate garbage, then unpin and logically delete the
        // slot so a future thread can recycle it.
        let bags = self.bags.borrow_mut().drain_all();
        collector().orphans.donate(bags);
        self.slot.state.store(0, Ordering::Release);
        self.slot.active.store(false, Ordering::Release);
    }
}

csds_sync::atomic::seam_thread_local! {
    static LOCAL: Local = Local::new();
}

/// An RAII token proving the current thread is pinned.
///
/// While any guard is live, every [`Shared`] loaded through it remains valid
/// (not freed), even if concurrently unlinked and retired by other threads.
/// Guards are not `Send`.
///
/// Guards are intended to be *held and reused*: a per-thread session (such
/// as `csds_core`'s `MapHandle`) keeps one guard alive across many
/// operations and calls [`Guard::repin`] between them, paying the pin
/// store+fence only when the global epoch has actually moved.
#[must_use = "dropping a Guard unpins the thread; loaded pointers become invalid"]
pub struct Guard {
    pinned: bool,
    _not_send: std::marker::PhantomData<*mut ()>,
}

/// Pin the current thread and return a guard.
pub fn pin() -> Guard {
    LOCAL.with(|l| {
        let depth = l.guard_depth.get();
        if depth == 0 {
            l.acquire();
        } else {
            l.guard_depth.set(depth + 1);
        }
    });
    Guard {
        pinned: true,
        _not_send: std::marker::PhantomData,
    }
}

/// Returns a guard that does **not** pin the thread.
///
/// # Safety
///
/// The caller must guarantee no other thread is concurrently accessing the
/// data structure (e.g. inside `Drop` with `&mut self`). Items retired
/// through an unprotected guard are dropped immediately.
pub unsafe fn unprotected() -> Guard {
    Guard {
        pinned: false,
        _not_send: std::marker::PhantomData,
    }
}

impl Guard {
    /// Retire the pointee: it will be dropped (as a `Box<T>`) once no pinned
    /// thread can still reference it.
    ///
    /// `T: Send` because the destructor may run on another thread: garbage
    /// of an exiting thread is donated to the global orphan stack and
    /// collected by whichever thread runs maintenance next.
    ///
    /// # Safety
    ///
    /// * `shared` must have been allocated as `Box<T>` (e.g. via
    ///   [`Shared::boxed`] / [`Atomic::new`]) and must not be null;
    /// * it must be unreachable for threads that pin *after* this call
    ///   (i.e. already unlinked from the shared structure);
    /// * it must be retired exactly once.
    pub unsafe fn defer_drop<T: Send>(&self, shared: Shared<'_, T>) {
        debug_assert!(!shared.is_null());
        let d = Deferred::new(shared.as_untagged_raw() as *mut T);
        if self.pinned {
            LOCAL.with(|l| l.defer(d));
        } else {
            // Unprotected: sole-owner contract lets us drop right away.
            d.execute();
        }
    }

    /// Re-validate this guard's pin against the current global epoch.
    ///
    /// If the epoch has not moved, this is a fence-free no-op (the slot has
    /// been continuously published since [`pin`], which is exactly what
    /// being pinned at the current epoch means). If it has moved, the guard
    /// re-publishes at the new epoch with the usual store + fence, letting
    /// reclamation progress past the old one.
    ///
    /// Long-running read phases (helping loops, full traversals) can call
    /// this periodically so they do not hold old epochs back, without
    /// paying a fence per call.
    ///
    /// Takes `&mut self`: re-publishing at a newer epoch invalidates every
    /// [`Shared`] previously loaded through this guard (their pointees may
    /// be reclaimed once the old epoch is released), and `Shared<'g>`
    /// borrows the guard, so the exclusive borrow makes holding one across
    /// `repin` a compile error. If other guards are live on this thread
    /// (nested pins), their loaded pointers would be invalidated too —
    /// which the borrow checker cannot see — so `repin` is inert unless
    /// this is the only live guard.
    ///
    /// Returns whether the repin was **effective**: `true` means this is
    /// the thread's only live guard and its pin is now published at the
    /// current global epoch (possibly having been there all along); `false`
    /// means the call was inert — other guards are live on this thread (or
    /// this guard is [`unprotected`]), so the thread stays pinned at the
    /// epoch of the oldest live guard. A long run of `false` from a guard
    /// that is repinned between operations is the signature of two
    /// long-lived sessions on one thread, which stalls epoch reclamation
    /// process-wide; callers holding a reusable guard should surface it
    /// (see `csds_core::MapHandle::stalled_ops`).
    pub fn repin(&mut self) -> bool {
        if !self.pinned {
            return false;
        }
        LOCAL.with(|l| {
            if l.guard_depth.get() != 1 {
                return false;
            }
            let global = collector().epoch.0.load(Ordering::Relaxed);
            if l.pin_epoch.get() != global {
                l.publish(global);
            }
            // Repins share the pin path's amortized maintenance counter. A
            // long-lived session retires through this guard for its whole
            // lifetime; without this, nothing on the repin path ever
            // advances the epoch or collects, and a handle-driven update
            // loop accumulates garbage unboundedly until the handle drops
            // (measured: ~130 MB and a 10× op-cost degradation per 2M
            // uncontended RMWs). Each round advances the epoch at most one
            // step past this thread's pin, so the next repin re-publishes
            // and the backlog drains within a few periods.
            //
            // The `ebr.omit_repin_maintenance` model knob deletes exactly
            // this block, re-introducing the historical bug so the model
            // checker's repin-reclamation regression can demonstrate that
            // it catches it (see crates/modelcheck/tests/ebr_guard.rs).
            #[cfg(feature = "modelcheck")]
            if csds_modelcheck::model_config_u64("ebr.omit_repin_maintenance") == Some(1) {
                return true;
            }
            let n = l.pin_count.get() + 1;
            l.pin_count.set(n);
            if n % maintenance_period() == 0 {
                l.maintenance(false);
            }
            true
        })
    }

    /// Force a maintenance round (epoch advance attempt + collection).
    /// Useful in tests and teardown paths.
    pub fn flush(&self) {
        if self.pinned {
            LOCAL.with(|l| {
                l.bags.borrow_mut().seal_open();
                l.maintenance(true);
            });
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.pinned {
            return;
        }
        LOCAL.with(|l| {
            let depth = l.guard_depth.get();
            l.guard_depth.set(depth - 1);
            if depth == 1 {
                // Always unpin: an idle thread must never hold the epoch
                // back (see the fast-path notes in the module docs).
                l.slot.state.store(0, Ordering::Release);
            }
        });
    }
}

/// Current global epoch (for tests and diagnostics).
pub fn global_epoch() -> u64 {
    collector().epoch.0.load(Ordering::Acquire)
}

/// Deferred items retired by the calling thread and not yet executed
/// locally (orphan donations at thread exit leave this count with the
/// thread). Lets a thread that is about to go idle decide whether to keep
/// walking the epoch forward ([`Guard::flush`]) until its own queue is
/// empty, instead of warehousing garbage for the duration of its sleep.
pub fn local_garbage_items() -> u64 {
    LOCAL.with(|l| l.deferred_pending.get())
}

/// Override the calling thread's reclamation-watchdog threshold (pending
/// deferred items between firings). Per-thread on purpose: tests shrink it
/// without perturbing concurrently running threads. Clamped to ≥ 1.
pub fn set_watchdog_threshold(items: u64) {
    LOCAL.with(|l| l.watchdog_threshold.set(items.max(1)));
}

/// Point-in-time reclamation health, for live dashboards (`repro watch`)
/// and post-run audits. Racy by nature — every field is an independent
/// relaxed observation of a moving system.
#[derive(Clone, Debug, Default)]
pub struct EbrHealth {
    /// Current global epoch.
    pub global_epoch: u64,
    /// Registered participant slots of live threads.
    pub active_participants: usize,
    /// Active participants currently pinned.
    pub pinned_participants: usize,
    /// Epoch lag (`global - pinned_epoch`) of each pinned participant; a
    /// sustained lag ≥ 2 means that participant is blocking reclamation.
    pub pinned_lags: Vec<u64>,
    /// Largest entry of `pinned_lags` (0 when nothing is pinned).
    pub max_epoch_lag: u64,
    /// Process-wide deferred garbage not yet reclaimed (items).
    pub garbage_items: u64,
    /// Approximate bytes of that garbage (retired allocations only).
    pub garbage_bytes: u64,
}

/// Snapshot the reclamation health gauges: per-participant epoch lag from a
/// registry scan, plus the process-wide deferred-garbage gauges maintained
/// through `csds_metrics`. Watchdog *firings* are counters in the metrics
/// registry (`ebr_stall_events`), not here.
pub fn health() -> EbrHealth {
    let c = collector();
    let global = c.epoch.0.load(Ordering::Acquire);
    let mut h = EbrHealth {
        global_epoch: global,
        ..Default::default()
    };
    for slot in c.registry.iter() {
        if !slot.active.load(Ordering::Acquire) {
            continue;
        }
        h.active_participants += 1;
        let s = slot.state.load(Ordering::Relaxed);
        if s & 1 == 1 {
            h.pinned_participants += 1;
            let lag = global.saturating_sub(s >> 1);
            h.max_epoch_lag = h.max_epoch_lag.max(lag);
            h.pinned_lags.push(lag);
        }
    }
    let (items, bytes) = csds_metrics::ebr_garbage();
    h.garbage_items = items;
    h.garbage_bytes = bytes;
    h
}

/// Registry occupancy `(total_slots, active_slots)` — diagnostics; racy.
pub fn registry_stats() -> (usize, usize) {
    let mut total = 0;
    let mut active = 0;
    for slot in collector().registry.iter() {
        total += 1;
        if slot.active.load(Ordering::Relaxed) {
            active += 1;
        }
    }
    (total, active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csds_sync::atomic::AtomicUsize;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Counted(#[allow(dead_code)] u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pin_unpin_tracks_depth() {
        let g1 = pin();
        let g2 = pin(); // nested
        drop(g2);
        drop(g1);
        LOCAL.with(|l| assert_eq!(l.guard_depth.get(), 0));
    }

    #[test]
    fn slot_is_cache_line_padded() {
        assert!(std::mem::align_of::<Slot>() >= 128);
        assert!(std::mem::size_of::<Slot>() >= 128);
    }

    #[test]
    fn unpin_clears_publication() {
        // An idle (unpinned) thread must never hold the epoch back: the
        // last guard drop clears the slot.
        let g = pin();
        LOCAL.with(|l| assert_eq!(l.slot.state.load(Ordering::Relaxed) & 1, 1));
        drop(g);
        LOCAL.with(|l| assert_eq!(l.slot.state.load(Ordering::Relaxed), 0));
    }

    #[test]
    fn repin_tracks_the_global_epoch() {
        let mut g = pin();
        // No-op repin: the epoch cannot move while only we are pinned and
        // nothing advances it, so the published state must be unchanged —
        // but the repin is still *effective* (sole guard, current epoch).
        let before = LOCAL.with(|l| l.slot.state.load(Ordering::Relaxed));
        assert!(g.repin());
        assert_eq!(LOCAL.with(|l| l.slot.state.load(Ordering::Relaxed)), before);
        // Force the epoch forward (our own pin is at the current epoch, so
        // the advance is allowed), then repin must re-publish.
        let e0 = global_epoch();
        g.flush();
        if global_epoch() > e0 {
            assert!(g.repin());
            let state = LOCAL.with(|l| l.slot.state.load(Ordering::Relaxed));
            assert_eq!(state & 1, 1);
            assert_eq!(state >> 1, global_epoch());
        }
        drop(g);
    }

    #[test]
    fn repin_is_inert_under_nested_guards() {
        let mut outer = pin();
        let mut inner = pin();
        let before = LOCAL.with(|l| l.slot.state.load(Ordering::Relaxed));
        // With the outer guard (and its loaded pointers) live, repin must
        // not move the published epoch out from under it — and must report
        // that it was inert.
        assert!(!inner.repin());
        assert_eq!(LOCAL.with(|l| l.slot.state.load(Ordering::Relaxed)), before);
        drop(inner);
        // Back to a single live guard: repin is effective again.
        assert!(outer.repin());
        drop(outer);
    }

    /// Pin/flush in a loop (sleeping between rounds) until `pred` holds or a
    /// generous timeout expires. Other tests may hold pins concurrently, so
    /// reclamation progress is eventual, not immediate.
    fn churn_until(pred: impl Fn() -> bool) -> bool {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            {
                let g = pin();
                g.flush();
            }
            if pred() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        pred()
    }

    #[test]
    fn epoch_advances_when_unpinned() {
        let e0 = global_epoch();
        assert!(churn_until(|| global_epoch() > e0), "epoch never advanced");
    }

    #[test]
    fn deferred_drop_eventually_runs() {
        DROPS.store(0, Ordering::SeqCst);
        {
            let g = pin();
            for i in 0..10 {
                let s = Shared::boxed(Counted(i));
                // SAFETY: never published; unique, retired once.
                unsafe { g.defer_drop(s) };
            }
            g.flush();
        }
        assert!(churn_until(|| DROPS.load(Ordering::SeqCst) >= 10));
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        static BLOCK_DROPS: AtomicUsize = AtomicUsize::new(0);
        struct B;
        impl Drop for B {
            fn drop(&mut self) {
                BLOCK_DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        // A long-lived reader on another thread pins an epoch...
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let reader = std::thread::spawn(move || {
            let _g = pin();
            ready_tx.send(()).unwrap();
            rx.recv().unwrap(); // hold the pin until told to stop
        });
        ready_rx.recv().unwrap();

        {
            let g = pin();
            let s = Shared::boxed(B);
            // SAFETY: unique allocation, retired once.
            unsafe { g.defer_drop(s) };
            g.flush();
        }
        // While the reader is pinned, the epoch cannot advance by 2, so the
        // object must not be dropped no matter how hard we try.
        for _ in 0..8 {
            let g = pin();
            g.flush();
        }
        assert_eq!(
            BLOCK_DROPS.load(Ordering::SeqCst),
            0,
            "freed under a pinned reader"
        );

        tx.send(()).unwrap();
        reader.join().unwrap();
        assert!(churn_until(|| BLOCK_DROPS.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn orphaned_garbage_from_exited_thread_is_collected() {
        static ORPHAN_DROPS: AtomicUsize = AtomicUsize::new(0);
        struct O;
        impl Drop for O {
            fn drop(&mut self) {
                ORPHAN_DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        std::thread::spawn(|| {
            let g = pin();
            let s = Shared::boxed(O);
            // SAFETY: unique allocation, retired once.
            unsafe { g.defer_drop(s) };
            // Thread exits without collecting; garbage becomes orphaned.
        })
        .join()
        .unwrap();
        assert!(churn_until(|| ORPHAN_DROPS.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn exited_threads_slots_are_recycled() {
        // Warm up this thread's own registration.
        drop(pin());
        let (total_before, _) = registry_stats();
        for _ in 0..32 {
            std::thread::spawn(|| drop(pin())).join().unwrap();
        }
        let (total_after, _) = registry_stats();
        // Sequential short-lived threads must reuse slots rather than grow
        // the registry by one each: without recycling the 32 spawns add 32
        // slots. Unrelated tests running concurrently in this process can
        // legitimately claim slots and force a few fresh pushes, so the
        // bound is "well under one per spawn", not an absolute count.
        assert!(
            total_after < total_before + 32,
            "registry grew {total_before} -> {total_after} over 32 sequential \
             threads; slots not recycled"
        );
    }

    #[test]
    fn sealed_ring_fifo_and_growth() {
        let mut ring = SealedRing::new();
        assert!(ring.is_empty());
        for i in 0..100 {
            ring.push_back(Bag {
                epoch: i,
                items: Vec::new(),
            });
        }
        assert_eq!(ring.len(), 100);
        assert_eq!(ring.front_epoch(), Some(0));
        for i in 0..100 {
            let bag = ring.pop_front().unwrap();
            assert_eq!(bag.epoch, i);
        }
        assert!(ring.pop_front().is_none());
        // Interleaved push/pop exercises wrap-around: pushes interleave the
        // streams (r, r+1000) while FIFO pops drain them at half rate, so
        // round r pops r/2 from the first stream or (r-1)/2 + 1000 from the
        // second, alternating.
        for round in 0..50u64 {
            ring.push_back(Bag {
                epoch: round,
                items: Vec::new(),
            });
            ring.push_back(Bag {
                epoch: round + 1000,
                items: Vec::new(),
            });
            let popped = ring.pop_front().unwrap().epoch;
            let expect = if round % 2 == 0 {
                round / 2
            } else {
                (round - 1) / 2 + 1000
            };
            assert_eq!(popped, expect);
        }
        assert_eq!(ring.len(), 50);
    }

    #[test]
    fn unprotected_drops_immediately() {
        DROPS.store(0, Ordering::SeqCst);
        // SAFETY: single-threaded test, no concurrent structure access.
        let g = unsafe { unprotected() };
        let s = Shared::boxed(Counted(7));
        let before = DROPS.load(Ordering::SeqCst);
        // SAFETY: unique allocation, retired once.
        unsafe { g.defer_drop(s) };
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }
}
