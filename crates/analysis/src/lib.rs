//! The birthday-paradox conflict model of paper §6 (equations 1–8).
//!
//! The paper explains practical wait-freedom quantitatively: in
//! state-of-the-art CSDSs only the short *write phase* of an update can
//! conflict, so the probability that any thread is delayed at a given
//! instant reduces to variations of the birthday paradox over the nodes of
//! the structure. This crate implements every equation and reproduces the
//! paper's numeric examples in its tests:
//!
//! | paper | here |
//! |---|---|
//! | Eq. 1  `f_u` | [`update_time_fraction`] |
//! | Eq. 2  `f_w` | [`write_phase_fraction`] |
//! | Eq. 3  `p_conflict` | [`conflict_probability`] |
//! | Eq. 4  `B_ht` | [`birthday_hash_table`] |
//! | Eq. 5  `B_ll` | [`birthday_linked_list`] |
//! | Eq. 6  `B_nonuniform` | [`birthday_nonuniform`] |
//! | Eq. 7  `B_ht-tsx` | [`birthday_hash_table_tsx`] |
//! | Eq. 8  `B_ll-tsx` | [`birthday_linked_list_tsx`] |
//! | §6.4 `p_lock = p_conflict^5` | [`fallback_probability`] |
//!
//! Everything is computed in log space ([`ln_gamma`]) so the factorials of
//! Eq. 5 stay finite for any structure size.

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// |error| < 1e-13 on the positive reals used here).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0 (got {x})");
    const G: f64 = 7.0;
    // Published Lanczos coefficients, quoted verbatim (more digits than f64
    // keeps, so the compiler rounds deterministically).
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)` via [`ln_gamma`].
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// **Eq. 1** — fraction of time a thread spends in update operations:
/// `f_u = u·dur_u / (u·dur_u + (1-u)·dur_r)` with update ratio `u` and the
/// average durations of updates and reads.
pub fn update_time_fraction(u: f64, dur_update: f64, dur_read: f64) -> f64 {
    let num = u * dur_update;
    num / (num + (1.0 - u) * dur_read)
}

/// **Eq. 2** — fraction of time a thread spends in its write phase:
/// `f_w = f_u · d_w / (d_w + d_p)` with write-phase and parse-phase
/// durations.
pub fn write_phase_fraction(f_u: f64, d_write: f64, d_parse: f64) -> f64 {
    f_u * d_write / (d_write + d_parse)
}

/// **Eq. 3** — probability that some thread is delayed by a conflict at a
/// random instant, in a system of `t` threads each in its write phase with
/// probability `f_w`, where `birthday(k)` is the structure-specific
/// probability that `k` concurrent writers conflict.
pub fn conflict_probability(t: u64, f_w: f64, birthday: impl Fn(u64) -> f64) -> f64 {
    let mut p = 0.0;
    for k in 1..=t {
        let ln_binom = ln_choose(t, k) + k as f64 * f_w.ln() + (t - k) as f64 * (1.0 - f_w).ln();
        p += ln_binom.exp() * birthday(k);
    }
    p
}

/// **Eq. 4** — classical birthday paradox: probability that `k` concurrent
/// writers to a hash table of `n` buckets collide on some bucket:
/// `B_ht(k, n) = 1 − ∏_{i=1}^{k-1} (n−i) / n^{k-1}`.
pub fn birthday_hash_table(k: u64, n: u64) -> f64 {
    if k <= 1 {
        return 0.0;
    }
    if k > n {
        return 1.0;
    }
    // ln ∏ (n-i)/n for i in 1..k
    let mut ln_p = 0.0;
    for i in 1..k {
        ln_p += ((n - i) as f64 / n as f64).ln();
    }
    1.0 - ln_p.exp()
}

/// **Eq. 5** — "almost birthday paradox" (adjacent-slot collisions) for a
/// linked list of `n` nodes where a remove locks two consecutive nodes:
/// `B_ll(k, n) = 1 − (n−k−1)! / ((n−2k)! · n^{k−1})`.
pub fn birthday_linked_list(k: u64, n: u64) -> f64 {
    if k <= 1 {
        return 0.0;
    }
    if 2 * k >= n || n < k + 1 {
        return 1.0;
    }
    let ln_p =
        ln_factorial(n - k - 1) - ln_factorial(n - 2 * k) - (k as f64 - 1.0) * (n as f64).ln();
    (1.0 - ln_p.exp()).clamp(0.0, 1.0)
}

/// **Eq. 6** — Poisson approximation for non-uniform access: with per-item
/// probabilities `p_i`, `B(k) = 1 − exp(−C(k,2) · Σ p_i²)`.
pub fn birthday_nonuniform(k: u64, probabilities: &[f64]) -> f64 {
    if k <= 1 {
        return 0.0;
    }
    let sum_sq: f64 = probabilities.iter().map(|p| p * p).sum();
    let pairs = (k * (k - 1) / 2) as f64;
    1.0 - (-pairs * sum_sq).exp()
}

/// **Eq. 7** — TSX variant for the hash table: readers also participate in
/// conflicts, so with `t` threads total and `k` writers on `n` buckets:
/// `B_ht-tsx(k, n) = 1 − (n−k)^{t−k} · ∏_{i=1}^{k-1}(n−i) / n^{t−1}`.
pub fn birthday_hash_table_tsx(k: u64, n: u64, t: u64) -> f64 {
    if k == 0 || t == 0 || k > t {
        return 0.0;
    }
    if k > n {
        return 1.0;
    }
    let mut ln_p = (t - k) as f64 * (((n - k) as f64) / n as f64).ln();
    for i in 1..k {
        ln_p += ((n - i) as f64 / n as f64).ln();
    }
    // Note: the product above uses n^{t-1} as denominator; we folded it in.
    (1.0 - ln_p.exp()).clamp(0.0, 1.0)
}

/// **Eq. 8** — TSX variant for the linked list:
/// `B_ll-tsx(k,n) = 1 − [(n−k−1)!/((n−2k)!·n^{k−1})] ·
/// [((n−2k)(n−2k−1))/(n(n−k−1))]^{t−k}`.
pub fn birthday_linked_list_tsx(k: u64, n: u64, t: u64) -> f64 {
    if k == 0 || t == 0 || k > t {
        return 0.0;
    }
    if 2 * k + 1 >= n {
        return 1.0;
    }
    let ln_base =
        ln_factorial(n - k - 1) - ln_factorial(n - 2 * k) - (k as f64 - 1.0) * (n as f64).ln();
    let ratio = ((n - 2 * k) as f64 * (n - 2 * k - 1) as f64) / (n as f64 * (n - k - 1) as f64);
    let ln_p = ln_base + (t - k) as f64 * ratio.ln();
    (1.0 - ln_p.exp()).clamp(0.0, 1.0)
}

/// §6.4 — probability that a critical section falls back to locking after
/// `retries` aborted speculative attempts: `p_lock = p_conflict^retries`
/// (the paper uses 5 retries).
pub fn fallback_probability(p_conflict: f64, retries: u32) -> f64 {
    p_conflict.powi(retries as i32)
}

/// Convenience bundle: the paper's §6.1 hash-table example.
///
/// Uniform workload, update duration ≈ 2× read duration, `d_p = 0` (the
/// bucket lock is taken immediately), `n` buckets, `t` threads, update
/// ratio `u`.
pub fn hash_table_example(n: u64, t: u64, u: f64) -> f64 {
    let f_u = update_time_fraction(u, 2.0, 1.0);
    let f_w = f_u; // d_p = 0 ⇒ f_w = f_u
    conflict_probability(t, f_w, |k| birthday_hash_table(k, n))
}

/// Convenience bundle: the paper's §6.2 linked-list example.
///
/// The write phase is ~10 % of the parse phase, so updates cost ~1.1× a
/// read; `n` list nodes, `t` threads, update ratio `u`.
pub fn linked_list_example(n: u64, t: u64, u: f64) -> f64 {
    let f_u = update_time_fraction(u, 1.1, 1.0);
    let f_w = write_phase_fraction(f_u, 0.1, 1.0);
    conflict_probability(t, f_w, |k| birthday_linked_list(k, n))
}

/// Convenience bundle: the §6.3 Zipf example (linked list, non-uniform).
pub fn linked_list_zipf_example(_n: u64, t: u64, u: f64, probabilities: &[f64]) -> f64 {
    let f_u = update_time_fraction(u, 1.1, 1.0);
    let f_w = write_phase_fraction(f_u, 0.1, 1.0);
    conflict_probability(t, f_w, |k| birthday_nonuniform(k, probabilities))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(1e-12)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, f) in [(1u64, 1.0f64), (2, 2.0), (5, 120.0), (10, 3628800.0)] {
            assert!(
                close(ln_factorial(n).exp(), f, 1e-9),
                "{n}! = {} vs {f}",
                ln_factorial(n).exp()
            );
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!(close(ln_choose(5, 2).exp(), 10.0, 1e-9));
        assert!(close(ln_choose(10, 5).exp(), 252.0, 1e-9));
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn classical_birthday_paradox_23_people() {
        // The canonical check: 23 people, 365 days → ≈ 50.7 %.
        let p = birthday_hash_table(23, 365);
        assert!(close(p, 0.5073, 0.01), "got {p}");
    }

    #[test]
    fn birthday_edge_cases() {
        assert_eq!(birthday_hash_table(0, 100), 0.0);
        assert_eq!(birthday_hash_table(1, 100), 0.0);
        assert_eq!(birthday_hash_table(101, 100), 1.0);
        assert_eq!(birthday_linked_list(1, 100), 0.0);
        assert_eq!(birthday_linked_list(60, 100), 1.0); // 2k >= n
        assert_eq!(birthday_nonuniform(1, &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn eq1_eq2_shapes() {
        // u = 10%, updates 2x reads ⇒ f_u = 0.2/(0.2+0.9) ≈ 0.1818.
        let f_u = update_time_fraction(0.10, 2.0, 1.0);
        assert!(close(f_u, 0.1818, 0.01), "f_u = {f_u}");
        // d_p = 0 ⇒ f_w = f_u.
        assert!(close(write_phase_fraction(f_u, 1.0, 0.0), f_u, 1e-12));
        // write = 10% of parse ⇒ f_w = f_u/11.
        assert!(close(write_phase_fraction(f_u, 0.1, 1.0), f_u / 11.0, 1e-9));
    }

    #[test]
    fn paper_sec61_hash_table_example() {
        // "1024 buckets and 20 threads, with 10% updates ... f_u = 0.18 ...
        //  p_conflict = 0.0058."
        let f_u = update_time_fraction(0.10, 2.0, 1.0);
        assert!(close(f_u, 0.18, 0.02), "f_u = {f_u}");
        // We get 0.0061; the paper reports 0.0058 after rounding f_u to
        // 0.18 — agreement within 6 %.
        let p = hash_table_example(1024, 20, 0.10);
        assert!(close(p, 0.0058, 0.10), "p_conflict = {p} (paper: 0.0058)");
    }

    #[test]
    fn paper_sec62_linked_list_example() {
        // "a list of 512 elements, 40 concurrent threads and 20% updates
        //  ... f_w ≈ 0.0215 ... p_conflict = 0.0021."
        let f_u = update_time_fraction(0.20, 1.1, 1.0);
        let f_w = write_phase_fraction(f_u, 0.1, 1.0);
        // Eq. 2 as printed gives f_w = f_u/11 ≈ 0.0196; the paper's quoted
        // 0.0215 corresponds to f_u/10 (it divided by d_p alone). Both are
        // "≈ 0.02"; we follow the printed equation.
        assert!(close(f_w, 0.0215, 0.15), "f_w = {f_w}");
        let p = linked_list_example(512, 40, 0.20);
        assert!(close(p, 0.0021, 0.25), "p_conflict = {p} (paper: 0.0021)");
    }

    #[test]
    fn paper_sec63_zipf_example() {
        // Zipf s=0.8 over 512 elements, 40 threads, 20% updates → ≈0.47 %.
        let h: f64 = (1..=512).map(|r| 1.0 / (r as f64).powf(0.8)).sum();
        let probs: Vec<f64> = (1..=512).map(|r| 1.0 / (r as f64).powf(0.8) / h).collect();
        let p = linked_list_zipf_example(512, 40, 0.20, &probs);
        assert!(close(p, 0.0047, 0.2), "p_conflict = {p} (paper: 0.0047)");
    }

    #[test]
    fn paper_sec64_tsx_fallback_probabilities() {
        // Hash table: p_lock ≈ 0.0005 % = 5e-6.
        let f_u = update_time_fraction(0.10, 2.0, 1.0);
        let p_ht = conflict_probability(20, f_u, |k| birthday_hash_table_tsx(k, 1024, 20));
        let p_lock_ht = fallback_probability(p_ht, 5);
        assert!(
            p_lock_ht < 1e-4,
            "hash-table p_lock = {p_lock_ht} (paper: ~5e-6)"
        );
        // Linked list: p_lock ≈ 0.001 % = 1e-5; and the per-attempt
        // conflict probability is non-negligible (paper: ~16 %).
        let f_u = update_time_fraction(0.20, 1.1, 1.0);
        let f_w = write_phase_fraction(f_u, 0.1, 1.0);
        let p_ll = conflict_probability(40, f_w, |k| birthday_linked_list_tsx(k, 512, 40));
        assert!(
            (0.05..0.4).contains(&p_ll),
            "list TSX conflict probability = {p_ll} (paper: ~0.16)"
        );
        let p_lock_ll = fallback_probability(p_ll, 5);
        assert!(p_lock_ll < 1e-2, "list p_lock = {p_lock_ll} (paper: ~1e-5)");
    }

    #[test]
    fn conflict_probability_monotone_in_threads_and_size() {
        let p10 = hash_table_example(1024, 10, 0.10);
        let p40 = hash_table_example(1024, 40, 0.10);
        assert!(p40 > p10, "more threads ⇒ more conflicts");
        let small = linked_list_example(64, 20, 0.25);
        let large = linked_list_example(4096, 20, 0.25);
        assert!(small > large, "smaller structure ⇒ more conflicts");
    }

    #[test]
    fn nonuniform_worse_than_uniform() {
        // Zipf concentrates accesses, so conflicts must be likelier than
        // uniform at equal size (paper §6.3: 0.47 % vs 0.21 %).
        let n = 512u64;
        let h: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(0.8)).sum();
        let probs: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(0.8) / h).collect();
        let uni = vec![1.0 / n as f64; n as usize];
        for k in [2u64, 5, 10] {
            assert!(
                birthday_nonuniform(k, &probs) > birthday_nonuniform(k, &uni),
                "k = {k}"
            );
        }
    }
}
