//! Linearizability spot-checks: record real concurrent histories on small
//! structures and feed them to the value-aware `csds-lincheck` checker —
//! the basic vocabulary and the compound vocabulary (upsert / CAS /
//! fetch-add) alike, for every algorithm in the library.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use csds::harness::AlgoKind;
use csds::lincheck::{check_history, Event, OpKind};

/// Small value space so compare-and-swaps actually match sometimes.
const VALUES: u64 = 4;

/// Record a short concurrent history on `algo` over a handful of keys.
/// `compound` adds upsert/CAS/fetch-add arms to the recorded mix.
fn record_history(
    algo: AlgoKind,
    threads: usize,
    ops_per_thread: usize,
    keys: u64,
    compound: bool,
    seed: u64,
) -> Vec<Event> {
    let map = Arc::new(algo.make(16));
    let origin = Instant::now();
    let barrier = Arc::new(Barrier::new(threads));
    let events = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for t in 0..threads {
        let map = Arc::clone(&map);
        let barrier = Arc::clone(&barrier);
        let events = Arc::clone(&events);
        handles.push(std::thread::spawn(move || {
            let mut state = seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut local = Vec::new();
            barrier.wait();
            for _ in 0..ops_per_thread {
                let key = rng() % keys;
                let arms = if compound { 6 } else { 3 };
                let arm = rng() % arms;
                let v = rng() % VALUES;
                let invoke = origin.elapsed().as_nanos() as u64;
                let kind = match arm {
                    0 => OpKind::Insert {
                        value: v,
                        ok: map.insert(key, v),
                    },
                    1 => OpKind::Remove {
                        removed: map.remove(key),
                    },
                    2 => OpKind::Get {
                        found: map.get(key),
                    },
                    3 => OpKind::Upsert {
                        value: v,
                        prev: map.upsert(key, v),
                    },
                    4 => {
                        let expected = rng() % VALUES;
                        let out = map.compare_swap(key, &expected, v);
                        let swapped = out.swapped();
                        OpKind::Cas {
                            expected,
                            new: v,
                            observed: out.observed(),
                            swapped,
                        }
                    }
                    _ => {
                        let (_, cur, _) =
                            map.rmw(key, &mut |c| Some(c.copied().unwrap_or(0).wrapping_add(1)));
                        OpKind::FetchAdd {
                            delta: 1,
                            new: cur.expect("fetch_add leaves the key present"),
                        }
                    }
                };
                let respond = origin.elapsed().as_nanos() as u64;
                local.push(Event::new(key, kind, invoke, respond.max(invoke)));
            }
            events.lock().unwrap().extend(local);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(events).unwrap().into_inner().unwrap()
}

fn check_algo(algo: AlgoKind, compound: bool, rounds: u64) {
    // Several small rounds rather than one big history: the checker is
    // exponential per key, and short rounds catch races just as well.
    for round in 0..rounds {
        // 3 threads x 6 ops over 4 keys ⇒ ≤ 18 events, ≤ ~10 per key.
        let history = record_history(algo, 3, 6, 4, compound, 0xC0DE + round);
        let result = check_history(&[], &history);
        assert!(
            result.is_ok(),
            "{}: round {round} not linearizable (compound={compound}): {result:?}\nhistory: {history:#?}",
            algo.name()
        );
    }
}

#[test]
fn every_algorithm_is_linearizable_on_the_basic_vocabulary() {
    for &algo in AlgoKind::all() {
        check_algo(algo, false, 4);
    }
}

#[test]
fn every_algorithm_is_linearizable_on_the_compound_vocabulary() {
    for &algo in AlgoKind::all() {
        check_algo(algo, true, 6);
    }
}

#[test]
fn figure_structures_get_extra_rounds() {
    // The four best-blocking structures the paper's figures feature, plus
    // the lock-free list and the structures carrying the optimistic
    // version-validated fast paths: deeper sampling on the designs users
    // reach for and on the paths whose parses run unsynchronized.
    for algo in [
        AlgoKind::LazyList,
        AlgoKind::LazyListElided,
        AlgoKind::HarrisList,
        AlgoKind::HerlihySkipList,
        AlgoKind::CouplingList,
        AlgoKind::CouplingHashTable,
        AlgoKind::LazyHashTable,
        AlgoKind::ElasticHashTable,
        AlgoKind::BstTk,
    ] {
        check_algo(algo, true, 8);
    }
}

#[test]
fn optimistic_structures_stay_linearizable_with_fast_paths_off() {
    // The pessimistic fallback paths are what every optimistic retry
    // exhaustion lands on; they get their own recorded histories so a
    // fallback never degrades below the pre-optimistic guarantees.
    csds::sync::with_optimistic_fast_paths(false, || {
        for algo in [
            AlgoKind::CouplingList,
            AlgoKind::CouplingHashTable,
            AlgoKind::LazyHashTable,
            AlgoKind::ElasticHashTable,
            AlgoKind::BstTk,
        ] {
            check_algo(algo, true, 4);
        }
    });
}

#[test]
fn checker_rejects_a_corrupted_history() {
    // Sanity: take a legal history and corrupt one response; the checker
    // must notice. (A remove reporting absence right after a successful
    // insert breaks the witness.)
    let history = vec![
        Event::new(1, OpKind::Insert { value: 5, ok: true }, 0, 1),
        Event::new(1, OpKind::Get { found: Some(5) }, 2, 3),
        Event::new(1, OpKind::Remove { removed: None }, 4, 5), // corrupted
    ];
    assert!(!check_history(&[], &history).is_ok());
    // And a value corruption specifically: an upsert replacing a value
    // nobody wrote.
    let history = vec![
        Event::new(1, OpKind::Insert { value: 5, ok: true }, 0, 1),
        Event::new(
            1,
            OpKind::Upsert {
                value: 6,
                prev: Some(9),
            },
            2,
            3,
        ),
    ];
    assert!(!check_history(&[], &history).is_ok());
}
