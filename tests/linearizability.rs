//! Linearizability spot-checks: record real concurrent histories on small
//! structures and feed them to the `csds-lincheck` checker.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use csds::harness::AlgoKind;
use csds::lincheck::{check_history, Event, OpKind};

/// Record a short concurrent history on `algo` over a handful of keys.
fn record_history(
    algo: AlgoKind,
    threads: usize,
    ops_per_thread: usize,
    keys: u64,
    seed: u64,
) -> Vec<Event> {
    let map = Arc::new(algo.make(16));
    let origin = Instant::now();
    let barrier = Arc::new(Barrier::new(threads));
    let events = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for t in 0..threads {
        let map = Arc::clone(&map);
        let barrier = Arc::clone(&barrier);
        let events = Arc::clone(&events);
        handles.push(std::thread::spawn(move || {
            let mut state = seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut local = Vec::new();
            barrier.wait();
            for _ in 0..ops_per_thread {
                let key = rng() % keys;
                let invoke = origin.elapsed().as_nanos() as u64;
                let kind = match rng() % 3 {
                    0 => OpKind::Insert {
                        ok: map.insert(key, key),
                    },
                    1 => OpKind::Remove {
                        ok: map.remove(key).is_some(),
                    },
                    _ => OpKind::Get {
                        found: map.get(key).is_some(),
                    },
                };
                let respond = origin.elapsed().as_nanos() as u64;
                local.push(Event::new(key, kind, invoke, respond.max(invoke)));
            }
            events.lock().unwrap().extend(local);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(events).unwrap().into_inner().unwrap()
}

fn check_algo(algo: AlgoKind) {
    // Several small rounds rather than one big history: the checker is
    // exponential per key, and short rounds catch races just as well.
    for round in 0..8u64 {
        // 3 threads x 6 ops over 4 keys ⇒ ≤ 18 events, ≤ ~10 per key.
        let history = record_history(algo, 3, 6, 4, 0xC0DE + round);
        let result = check_history(&[], &history);
        assert!(
            result.is_ok(),
            "{}: round {round} not linearizable: {result:?}\nhistory: {history:#?}",
            algo.name()
        );
    }
}

#[test]
fn lazy_list_is_linearizable() {
    check_algo(AlgoKind::LazyList);
}

#[test]
fn harris_list_is_linearizable() {
    check_algo(AlgoKind::HarrisList);
}

#[test]
fn waitfree_list_is_linearizable() {
    check_algo(AlgoKind::WaitFreeList);
}

#[test]
fn herlihy_skiplist_is_linearizable() {
    check_algo(AlgoKind::HerlihySkipList);
}

#[test]
fn lazy_hashtable_is_linearizable() {
    check_algo(AlgoKind::LazyHashTable);
}

#[test]
fn bst_tk_is_linearizable() {
    check_algo(AlgoKind::BstTk);
}

#[test]
fn elided_lazy_list_is_linearizable() {
    check_algo(AlgoKind::LazyListElided);
}

#[test]
fn checker_rejects_a_corrupted_history() {
    // Sanity: take a real history and corrupt one response; the checker
    // must notice. (Flipping a successful insert to failed on a key that
    // was previously absent breaks the witness.)
    let history = vec![
        Event::new(1, OpKind::Insert { ok: true }, 0, 1),
        Event::new(1, OpKind::Get { found: true }, 2, 3),
        Event::new(1, OpKind::Remove { ok: false }, 4, 5), // corrupted
    ];
    assert!(!check_history(&[], &history).is_ok());
}
