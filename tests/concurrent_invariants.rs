//! Concurrent net-effect invariants for every algorithm, plus targeted
//! high-contention scenarios (paper §5.3's extreme configuration).

mod common;

use std::sync::Arc;

use csds::harness::AlgoKind;

#[test]
fn net_effect_holds_for_every_algorithm() {
    for algo in AlgoKind::all() {
        let map = Arc::new(algo.make(64));
        common::net_effect(map, 4, 2_000, 48);
    }
}

#[test]
fn extreme_contention_tiny_structure() {
    // Paper §5.3: 16 elements out of 32 keys, high update ratio, many
    // threads — correctness must hold even where practical wait-freedom
    // frays.
    for algo in [
        AlgoKind::LazyList,
        AlgoKind::HerlihySkipList,
        AlgoKind::LazyHashTable,
        AlgoKind::BstTk,
        AlgoKind::HarrisList,
        AlgoKind::WaitFreeList,
    ] {
        let map = Arc::new(algo.make(32));
        common::net_effect(map, 8, 2_000, 8);
    }
}

#[test]
fn elision_variants_under_contention() {
    for algo in [
        AlgoKind::LazyListElided,
        AlgoKind::HerlihySkipListElided,
        AlgoKind::LazyHashTableElided,
        AlgoKind::BstTkElided,
    ] {
        let map = Arc::new(algo.make(32));
        common::net_effect(map, 6, 1_500, 16);
    }
}

#[test]
fn mixed_readers_and_writers_see_no_torn_values() {
    // Writers flip keys between two exact values; readers must only ever
    // observe one of them.
    let map = Arc::new(AlgoKind::HerlihySkipList.make(64));
    for k in 0..32u64 {
        map.insert(k, k * 1000);
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = common::rng_stream(w + 1);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let k = rng() % 32;
                map.remove(k);
                map.insert(k, k * 1000);
            }
        }));
    }
    for _ in 0..2 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = common::rng_stream(0x5EED);
            for _ in 0..30_000 {
                let k = rng() % 32;
                if let Some(v) = map.get(k) {
                    assert_eq!(v, k * 1000, "torn value at key {k}");
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
