//! Concurrent net-effect invariants for every algorithm, plus targeted
//! high-contention scenarios (paper §5.3's extreme configuration).

mod common;

use std::sync::Arc;

use csds::harness::AlgoKind;

#[test]
fn net_effect_holds_for_every_algorithm() {
    for algo in AlgoKind::all() {
        let map = Arc::new(algo.make(64));
        common::net_effect(map, 4, 2_000, 48);
    }
}

#[test]
fn extreme_contention_tiny_structure() {
    // Paper §5.3: 16 elements out of 32 keys, high update ratio, many
    // threads — correctness must hold even where practical wait-freedom
    // frays.
    for algo in [
        AlgoKind::LazyList,
        AlgoKind::HerlihySkipList,
        AlgoKind::LazyHashTable,
        AlgoKind::BstTk,
        AlgoKind::HarrisList,
        AlgoKind::WaitFreeList,
    ] {
        let map = Arc::new(algo.make(32));
        common::net_effect(map, 8, 2_000, 8);
    }
}

#[test]
fn elision_variants_under_contention() {
    for algo in [
        AlgoKind::LazyListElided,
        AlgoKind::HerlihySkipListElided,
        AlgoKind::LazyHashTableElided,
        AlgoKind::BstTkElided,
    ] {
        let map = Arc::new(algo.make(32));
        common::net_effect(map, 6, 1_500, 16);
    }
}

#[test]
fn elastic_net_effect_with_migration_forced_every_few_ops() {
    // Tiny shards, a one-bucket floor and a one-bucket migration quantum:
    // at this scale the grow/shrink thresholds trip every handful of
    // updates, so most operations run with a migration in flight. The
    // net-effect invariant must hold anyway, and the table must have
    // actually resized in both directions.
    use csds::core::{ConcurrentMap, MapHandle};
    use csds::elastic::{ElasticConfig, ElasticHashTable};
    use csds_sync::atomic::{AtomicU64, Ordering};

    const THREADS: usize = 4;
    const OPS: u64 = 6_000;
    const RANGE: u64 = 96;
    let map = Arc::new(ElasticHashTable::<u64>::with_config(ElasticConfig {
        shards: 2,
        initial_buckets: 2,
        min_buckets: 2,
        migration_quantum: 1,
        counter_cells: 2,
    }));
    let ins: Arc<Vec<AtomicU64>> = Arc::new((0..RANGE).map(|_| AtomicU64::new(0)).collect());
    let rem: Arc<Vec<AtomicU64>> = Arc::new((0..RANGE).map(|_| AtomicU64::new(0)).collect());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let map = Arc::clone(&map);
        let ins = Arc::clone(&ins);
        let rem = Arc::clone(&rem);
        handles.push(std::thread::spawn(move || {
            // Handle path: one reusable guard per worker, repinned per op,
            // exactly the harness's hot-loop configuration.
            let mut h = MapHandle::new(&*map);
            let mut rng =
                common::rng_stream(0xE1A5 ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            for i in 0..OPS {
                let key = rng() % RANGE;
                // Alternate insert- and remove-heavy blocks so the
                // population repeatedly crosses both thresholds.
                let grow_block = (i / 250) % 2 == 0;
                let roll = rng() % 10;
                if if grow_block { roll < 6 } else { roll < 2 } {
                    if h.insert(key, key) {
                        ins[key as usize].fetch_add(1, Ordering::Relaxed);
                    }
                } else if roll < 8 {
                    if h.remove(key).is_some() {
                        rem[key as usize].fetch_add(1, Ordering::Relaxed);
                    }
                } else if let Some(&v) = h.get(key) {
                    assert_eq!(v, key, "value corruption at {key}");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut expected = 0usize;
    for k in 0..RANGE as usize {
        let net = ins[k].load(Ordering::Relaxed) as i64 - rem[k].load(Ordering::Relaxed) as i64;
        assert!((0..=1).contains(&net), "key {k}: net {net}");
        assert_eq!(map.get(k as u64).is_some(), net == 1, "key {k}");
        expected += net as usize;
    }
    assert_eq!(map.len(), expected);
    let stats = map.resize_stats();
    assert!(
        stats.migrations_started >= 2,
        "migration was supposed to be forced throughout: {stats:?}"
    );
    assert!(stats.buckets_moved > 0);
    assert_eq!(
        stats.migrations_completed, stats.tables_retired,
        "every drained table must be retired exactly once"
    );
}

#[test]
fn mixed_readers_and_writers_see_no_torn_values() {
    // Writers flip keys between two exact values; readers must only ever
    // observe one of them.
    let map = Arc::new(AlgoKind::HerlihySkipList.make(64));
    for k in 0..32u64 {
        map.insert(k, k * 1000);
    }
    let stop = Arc::new(csds_sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = common::rng_stream(w + 1);
            while !stop.load(csds_sync::atomic::Ordering::Relaxed) {
                let k = rng() % 32;
                map.remove(k);
                map.insert(k, k * 1000);
            }
        }));
    }
    for _ in 0..2 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = common::rng_stream(0x5EED);
            for _ in 0..30_000 {
                let k = rng() % 32;
                if let Some(v) = map.get(k) {
                    assert_eq!(v, k * 1000, "torn value at key {k}");
                }
            }
            stop.store(true, csds_sync::atomic::Ordering::Relaxed);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
