//! The async service front-end, exercised end to end: every algorithm
//! behind the service matches the sequential model, concurrent clients
//! preserve the net-effect invariant, backpressure surfaces when a ring
//! fills, and shutdown drains accepted requests instead of dropping them.

mod common;

use csds_sync::atomic::{AtomicBool, Ordering};
use std::collections::BTreeMap;
use std::sync::Arc;

use csds::core::{ConcurrentMap, GuardedMap};
use csds::ebr::Guard;
use csds::harness::AlgoKind;
use csds::prelude::{block_on, OpKind, Reply, Service, ServiceConfig, ServiceError};

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        cores: 2,
        ring_capacity: 64,
        max_batch: 16,
        ..ServiceConfig::default()
    }
}

#[test]
fn all_algorithms_match_btreemap_through_the_service() {
    for algo in AlgoKind::all() {
        let svc = algo.make_service(128, service_cfg());
        let client = svc.client();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = common::rng_stream(0x5E51_C0DE);
        for i in 0..600u64 {
            let key = rng() % 96;
            match rng() % 3 {
                0 => {
                    let expected = !model.contains_key(&key);
                    let got = block_on(client.insert(key, i).unwrap()).unwrap();
                    assert_eq!(
                        got,
                        Reply::Inserted(expected),
                        "{}: insert({key}) at {i}",
                        algo.name()
                    );
                    if expected {
                        model.insert(key, i);
                    }
                }
                1 => {
                    let got = block_on(client.remove(key).unwrap()).unwrap();
                    assert_eq!(
                        got,
                        Reply::Removed(model.remove(&key)),
                        "{}: remove({key}) at {i}",
                        algo.name()
                    );
                }
                _ => {
                    let got = block_on(client.get(key).unwrap()).unwrap();
                    assert_eq!(
                        got,
                        Reply::Got(model.get(&key).copied()),
                        "{}: get({key}) at {i}",
                        algo.name()
                    );
                }
            }
        }
        // Out-of-band check through the served map itself.
        assert_eq!(svc.map().len(), model.len(), "{}", algo.name());
        for (&k, &v) in &model {
            let got = client.get(k).unwrap().wait().unwrap();
            assert_eq!(got, Reply::Got(Some(v)), "{}: final get({k})", algo.name());
        }
        svc.shutdown();
    }
}

#[test]
fn all_algorithms_concurrent_net_effect_through_the_service() {
    const CLIENTS: usize = 2;
    const OPS: u64 = 1_200;
    const RANGE: u64 = 32;
    const BATCH: usize = 24;
    for algo in AlgoKind::all() {
        let svc = algo.make_service(64, service_cfg());
        let ins: Arc<Vec<csds_sync::atomic::AtomicU64>> =
            Arc::new((0..RANGE).map(|_| Default::default()).collect());
        let rem: Arc<Vec<csds_sync::atomic::AtomicU64>> =
            Arc::new((0..RANGE).map(|_| Default::default()).collect());
        let mut threads = Vec::new();
        for c in 0..CLIENTS as u64 {
            let client = svc.client();
            let ins = Arc::clone(&ins);
            let rem = Arc::clone(&rem);
            threads.push(std::thread::spawn(move || {
                let mut rng = common::rng_stream(0xBEEF ^ (c + 1).wrapping_mul(0x9E3779B97F4A7C15));
                let mut sent = 0u64;
                while sent < OPS {
                    let n = BATCH.min((OPS - sent) as usize);
                    let mut keys = Vec::with_capacity(n);
                    let batch: Vec<_> = (0..n)
                        .map(|_| {
                            let key = rng() % RANGE;
                            keys.push(key);
                            let op = match rng() % 3 {
                                0 => OpKind::Insert(key),
                                1 => OpKind::Remove,
                                _ => OpKind::Get,
                            };
                            (key, op)
                        })
                        .collect();
                    let pending = client.submit_batch(batch).unwrap();
                    for (key, f) in keys.into_iter().zip(pending) {
                        match f.wait().unwrap() {
                            Reply::Inserted(true) => {
                                ins[key as usize].fetch_add(1, Ordering::Relaxed);
                            }
                            Reply::Removed(Some(v)) => {
                                assert_eq!(v, key, "value corruption at {key}");
                                rem[key as usize].fetch_add(1, Ordering::Relaxed);
                            }
                            Reply::Got(Some(v)) => {
                                assert_eq!(v, key, "value corruption at {key}");
                            }
                            _ => {}
                        }
                    }
                    sent += n as u64;
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let mut expected_len = 0usize;
        for k in 0..RANGE {
            let net = ins[k as usize].load(Ordering::Relaxed) as i64
                - rem[k as usize].load(Ordering::Relaxed) as i64;
            assert!(net == 0 || net == 1, "{}: key {k} net {net}", algo.name());
            assert_eq!(
                svc.map().get(k).is_some(),
                net == 1,
                "{}: key {k} presence vs net {net}",
                algo.name()
            );
            expected_len += net as usize;
        }
        assert_eq!(svc.map().len(), expected_len, "{}", algo.name());
        let stats = svc.shutdown();
        assert_eq!(
            stats.aggregate().ops,
            CLIENTS as u64 * OPS,
            "{}: every accepted op executes exactly once",
            algo.name()
        );
    }
}

#[test]
fn all_algorithms_compound_vocabulary_through_the_service() {
    use csds::core::CasOutcome;
    for algo in AlgoKind::all() {
        let svc = algo.make_service(128, service_cfg());
        let client = svc.client();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = common::rng_stream(0xCAFE_F00D);
        for i in 0..400u64 {
            let key = rng() % 48;
            let v = rng() % 8;
            match rng() % 4 {
                0 => {
                    let got = block_on(client.upsert(key, v).unwrap()).unwrap();
                    assert_eq!(
                        got,
                        Reply::Upserted(model.insert(key, v)),
                        "{}: upsert({key}) at {i}",
                        algo.name()
                    );
                }
                1 => {
                    let expected = rng() % 8;
                    let got = block_on(client.compare_swap(key, expected, v).unwrap()).unwrap();
                    let want = match model.get(&key) {
                        Some(&cur) if cur == expected => {
                            model.insert(key, v);
                            CasOutcome::Swapped(cur)
                        }
                        Some(&cur) => CasOutcome::Mismatch(cur),
                        None => CasOutcome::Absent,
                    };
                    assert_eq!(
                        got,
                        Reply::Cas(want),
                        "{}: compare_swap({key}) at {i}",
                        algo.name()
                    );
                }
                2 => {
                    let got = block_on(client.fetch_add(key, 3).unwrap()).unwrap();
                    let new = model.get(&key).copied().unwrap_or(0).wrapping_add(3);
                    model.insert(key, new);
                    assert_eq!(
                        got,
                        Reply::Added(new),
                        "{}: fetch_add({key}) at {i}",
                        algo.name()
                    );
                }
                _ => {
                    let got = block_on(client.get(key).unwrap()).unwrap();
                    assert_eq!(
                        got,
                        Reply::Got(model.get(&key).copied()),
                        "{}: get({key}) at {i}",
                        algo.name()
                    );
                }
            }
        }
        assert_eq!(svc.map().len(), model.len(), "{}", algo.name());
        let stats = svc.shutdown();
        assert_eq!(stats.aggregate().ops, 400, "{}", algo.name());
    }
}

#[test]
fn service_fetch_add_is_exactly_once_under_concurrent_clients() {
    // Counters served over the elastic table: every accepted FetchAdd must
    // land exactly once, across rings, batches, and live migrations.
    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 1_500;
    const KEYS: u64 = 16;
    let svc = AlgoKind::ElasticHashTable.make_service(16, service_cfg());
    let mut threads = Vec::new();
    for c in 0..CLIENTS as u64 {
        let client = svc.client();
        threads.push(std::thread::spawn(move || {
            let mut rng = common::rng_stream(0xADD ^ (c + 1).wrapping_mul(0x9E3779B97F4A7C15));
            let mut pending = Vec::new();
            for _ in 0..PER_CLIENT {
                pending.push(client.fetch_add(rng() % KEYS, 1).unwrap());
            }
            for f in pending {
                assert!(f.wait().unwrap().added().is_some());
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let total: u64 = (0..KEYS).map(|k| svc.map().get(k).unwrap_or(0)).sum();
    assert_eq!(
        total,
        CLIENTS as u64 * PER_CLIENT,
        "lost or doubled fetch_add through the service"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.aggregate().ops, CLIENTS as u64 * PER_CLIENT);
    assert!(
        stats.aggregate().batch_target_max >= 1,
        "adaptive target must be recorded"
    );
}

/// A `GuardedMap` whose `get_in` on one sentinel key blocks until released:
/// lets the tests park a core worker mid-operation deterministically, so
/// ring backpressure and shutdown-with-pending-requests become observable
/// states instead of races.
struct GateMap {
    inner: csds::core::hashtable::LazyHashTable<u64>,
    blocked: AtomicBool,
    release: AtomicBool,
}

const GATE_KEY: u64 = 999_999;

impl GateMap {
    fn new() -> Self {
        GateMap {
            inner: csds::core::hashtable::LazyHashTable::with_capacity(64),
            blocked: AtomicBool::new(false),
            release: AtomicBool::new(false),
        }
    }

    fn wait_blocked(&self) {
        let start = std::time::Instant::now();
        while !self.blocked.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < std::time::Duration::from_secs(30),
                "worker never reached the gate"
            );
            std::thread::yield_now();
        }
    }
}

impl GuardedMap<u64> for GateMap {
    fn get_in<'g>(&'g self, key: u64, guard: &'g Guard) -> Option<&'g u64> {
        if key == GATE_KEY {
            self.blocked.store(true, Ordering::SeqCst);
            while !self.release.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        }
        self.inner.get_in(key, guard)
    }

    fn insert_in(&self, key: u64, value: u64, guard: &Guard) -> bool {
        self.inner.insert_in(key, value, guard)
    }

    fn remove_in(&self, key: u64, guard: &Guard) -> Option<u64> {
        self.inner.remove_in(key, guard)
    }

    fn len_in(&self, guard: &Guard) -> usize {
        self.inner.len_in(guard)
    }

    fn rmw_in<'g>(
        &'g self,
        key: u64,
        f: csds::core::RmwFn<'_, u64>,
        guard: &'g Guard,
    ) -> csds::core::RmwOutcome<'g, u64> {
        self.inner.rmw_in(key, f, guard)
    }
}

#[test]
fn full_ring_reports_backpressure_and_recovers() {
    let map = Arc::new(GateMap::new());
    let svc = Service::start(
        Arc::clone(&map),
        ServiceConfig {
            cores: 1,
            ring_capacity: 4,
            max_batch: 4,
            ..ServiceConfig::default()
        },
    );
    let client = svc.client();
    // Park the single worker inside an operation.
    let gate_pending = client.try_submit(GATE_KEY, OpKind::Get).unwrap();
    map.wait_blocked();
    // Fill the ring behind it...
    let mut queued = Vec::new();
    for k in 0..4 {
        queued.push(client.try_submit(k, OpKind::Insert(k)).unwrap());
    }
    // ...and the next submission must bounce, handing the op back.
    let rejected = client.try_submit(7, OpKind::Insert(77)).unwrap_err();
    assert_eq!(rejected.reason, ServiceError::Busy);
    assert_eq!(rejected.op, OpKind::Insert(77));
    assert_eq!(svc.queue_depths(), vec![4]);
    // Releasing the worker drains everything and intake recovers.
    map.release.store(true, Ordering::SeqCst);
    assert_eq!(gate_pending.wait().unwrap(), Reply::Got(None));
    for (k, f) in queued.into_iter().enumerate() {
        assert_eq!(f.wait().unwrap(), Reply::Inserted(true), "queued op {k}");
    }
    assert!(block_on(client.insert(7, 77).unwrap()).unwrap().inserted());
    let stats = svc.shutdown();
    assert_eq!(stats.aggregate().ops, 6);
    assert!(stats.aggregate().max_depth >= 1);
}

#[test]
fn namespaces_isolate_the_same_key_across_tenants() {
    // One key, many homes: the default map and three tenants must never
    // see each other's values, whichever algorithm serves the default map.
    for algo in AlgoKind::all() {
        let svc = algo.make_service(64, service_cfg());
        let client = svc.client();
        assert!(block_on(client.insert(1, 1000).unwrap())
            .unwrap()
            .inserted());
        for ns in 1..=3u64 {
            let tenant = client.namespace(ns);
            assert!(
                block_on(tenant.insert(1, 1000 + ns).unwrap())
                    .unwrap()
                    .inserted(),
                "{}: ns {ns} first insert",
                algo.name()
            );
        }
        // Each namespace reads back its own value.
        assert_eq!(
            block_on(client.get(1).unwrap()).unwrap(),
            Reply::Got(Some(1000)),
            "{}: default map",
            algo.name()
        );
        for ns in 1..=3u64 {
            assert_eq!(
                block_on(client.namespace(ns).get(1).unwrap()).unwrap(),
                Reply::Got(Some(1000 + ns)),
                "{}: ns {ns}",
                algo.name()
            );
        }
        // Removing from one tenant leaves the others (and the default map)
        // untouched.
        assert_eq!(
            block_on(client.namespace(2).remove(1).unwrap()).unwrap(),
            Reply::Removed(Some(1002)),
            "{}",
            algo.name()
        );
        assert_eq!(
            block_on(client.namespace(2).get(1).unwrap()).unwrap(),
            Reply::Got(None)
        );
        assert_eq!(
            block_on(client.namespace(1).get(1).unwrap()).unwrap(),
            Reply::Got(Some(1001))
        );
        assert_eq!(
            block_on(client.namespace(3).get(1).unwrap()).unwrap(),
            Reply::Got(Some(1003))
        );
        assert_eq!(
            block_on(client.get(1).unwrap()).unwrap(),
            Reply::Got(Some(1000))
        );
        assert_eq!(
            svc.map().len(),
            1,
            "{}: tenant ops leaked into the map",
            algo.name()
        );
        // ns 2 went empty above, so an idle sweep may have retired it (and
        // the subsequent get revived it): created can exceed 3, but the
        // ledger must always balance.
        let counts = svc.namespace_counts();
        assert!(counts.created >= 3, "{}: {counts:?}", algo.name());
        assert_eq!(
            counts.created - counts.retired,
            counts.live,
            "{}: {counts:?}",
            algo.name()
        );
        svc.shutdown();
    }
}

#[test]
fn concurrent_first_ops_create_a_namespace_exactly_once() {
    // Many clients race their very first operation on the same fresh
    // namespace; the directory must come out with exactly one table, and
    // every accepted op must land in it.
    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 200;
    const FRESH_NS: u64 = 77;
    let svc = AlgoKind::ElasticHashTable.make_service(16, service_cfg());
    let gate = Arc::new(std::sync::Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for c in 0..CLIENTS as u64 {
        let client = svc.client();
        let gate = Arc::clone(&gate);
        threads.push(std::thread::spawn(move || {
            let tenant = client.namespace(FRESH_NS);
            gate.wait(); // line up the first ops as tightly as possible
            let mut pending = Vec::new();
            for i in 0..PER_CLIENT {
                pending.push(tenant.fetch_add(c * PER_CLIENT + i, 1).unwrap());
            }
            for f in pending {
                assert!(f.wait().unwrap().added().is_some());
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let counts = svc.namespace_counts();
    assert_eq!(
        counts.created, 1,
        "racing first ops must create one table, not {}",
        counts.created
    );
    assert_eq!(counts.live, 1);
    // Every op landed in the surviving table: all keys distinct, all
    // present exactly once.
    let client = svc.client();
    let tenant = client.namespace(FRESH_NS);
    for k in 0..CLIENTS as u64 * PER_CLIENT {
        assert_eq!(
            block_on(tenant.get(k).unwrap()).unwrap(),
            Reply::Got(Some(1)),
            "key {k} lost in the creation race"
        );
    }
    svc.shutdown();
}

#[test]
fn idle_namespace_shrinks_to_zero_and_revives_transparently() {
    let svc = AlgoKind::ElasticHashTable.make_service(16, service_cfg());
    let client = svc.client();
    let tenant = client.namespace(9);
    // Populate past the tenant table's initial capacity, then drain.
    for k in 0..200u64 {
        assert!(block_on(tenant.insert(k, k).unwrap()).unwrap().inserted());
    }
    for k in 0..200u64 {
        assert_eq!(
            block_on(tenant.remove(k).unwrap()).unwrap(),
            Reply::Removed(Some(k))
        );
    }
    // The owning worker's idle sweeps must now retire the empty tenant:
    // directory entry unlinked, table freed through EBR.
    let start = std::time::Instant::now();
    loop {
        let counts = svc.namespace_counts();
        if counts.retired == 1 {
            assert_eq!(counts.created, 1);
            assert_eq!(counts.live, 0, "retired tenant still in the directory");
            break;
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "idle empty namespace was never retired: {counts:?}"
        );
        std::thread::yield_now();
    }
    // Revival is transparent: the next op lazily creates a fresh table.
    assert!(block_on(tenant.insert(5, 55).unwrap()).unwrap().inserted());
    assert_eq!(
        block_on(tenant.get(5).unwrap()).unwrap(),
        Reply::Got(Some(55))
    );
    let counts = svc.namespace_counts();
    assert_eq!(counts.created, 2, "revival creates a second incarnation");
    assert_eq!(counts.retired, 1);
    assert_eq!(counts.live, 1);
    svc.shutdown();
}

#[test]
fn namespace_quota_rejects_with_busy_and_hands_the_op_back() {
    let svc = AlgoKind::ElasticHashTable.make_service(
        16,
        ServiceConfig {
            namespace_quota: 4,
            ..service_cfg()
        },
    );
    let client = svc.client();
    let tenant = client.namespace(3);
    for k in 0..4u64 {
        assert!(block_on(tenant.insert(k, k).unwrap()).unwrap().inserted());
    }
    // At quota: a may-insert op on a non-resident key bounces with `Busy`
    // and the exact op handed back — nothing enqueued, nothing lost.
    let rejected = tenant.try_submit(100, OpKind::Insert(1)).unwrap_err();
    assert_eq!(rejected.reason, ServiceError::Busy);
    assert_eq!(rejected.op, OpKind::Insert(1));
    let rejected = tenant.try_submit(101, OpKind::Upsert(2)).unwrap_err();
    assert_eq!(rejected.reason, ServiceError::Busy);
    assert_eq!(rejected.op, OpKind::Upsert(2));
    // The blocking path reports the same verdict instead of spinning.
    let rejected = tenant.insert(102, 3).unwrap_err();
    assert_eq!(rejected.reason, ServiceError::Busy);
    // Reads, removes, and updates of resident keys still flow at quota.
    assert_eq!(
        block_on(tenant.get(2).unwrap()).unwrap(),
        Reply::Got(Some(2))
    );
    assert!(!block_on(tenant.insert(2, 9).unwrap()).unwrap().inserted());
    // The default namespace and other tenants are not throttled by ns 3.
    assert!(block_on(client.insert(100, 1).unwrap()).unwrap().inserted());
    // Freeing a slot reopens admission.
    assert_eq!(
        block_on(tenant.remove(0).unwrap()).unwrap(),
        Reply::Removed(Some(0))
    );
    assert!(block_on(tenant.insert(100, 1).unwrap()).unwrap().inserted());
    svc.shutdown();
}

#[test]
fn shutdown_drains_accepted_ops_across_namespaces_exactly_once() {
    // One worker, parked inside a default-map op, with tenant traffic for
    // three namespaces queued behind it. Shutdown must block until every
    // accepted op — default and tenant alike — has executed exactly once.
    let map = Arc::new(GateMap::new());
    let svc = Service::start(
        Arc::clone(&map),
        ServiceConfig {
            cores: 1,
            ring_capacity: 64,
            max_batch: 8,
            ..ServiceConfig::default()
        },
    );
    let client = svc.client();
    let gate_pending = client.try_submit(GATE_KEY, OpKind::Get).unwrap();
    map.wait_blocked();
    // 30 tenant ops across 3 namespaces, accepted while the worker is stuck.
    let mut queued = Vec::new();
    for ns in 1..=3u64 {
        let tenant = client.namespace(ns);
        for k in 0..10u64 {
            queued.push((
                ns,
                k,
                tenant.try_submit(k, OpKind::Insert(ns * 100 + k)).unwrap(),
            ));
        }
    }
    let shutter = {
        let svc_client = svc.client();
        let handle = std::thread::spawn(move || svc.shutdown());
        let start = std::time::Instant::now();
        while !svc_client.is_shutting_down() {
            assert!(start.elapsed() < std::time::Duration::from_secs(30));
            std::thread::yield_now();
        }
        handle
    };
    assert!(!shutter.is_finished(), "shutdown returned with ops pending");
    map.release.store(true, Ordering::SeqCst);
    let stats = shutter.join().unwrap();
    assert_eq!(gate_pending.wait().unwrap(), Reply::Got(None));
    for (ns, k, f) in queued {
        assert!(
            f.wait().unwrap().inserted(),
            "accepted op (ns {ns}, key {k}) was dropped or doubled"
        );
    }
    // 1 gate op + 30 tenant ops, each exactly once.
    assert_eq!(stats.aggregate().ops, 31);
    assert_eq!(stats.aggregate().ns_ops, 30);
    assert_eq!(
        map.inner.len(),
        0,
        "tenant ops must not touch the default map"
    );
}

#[test]
fn shutdown_waits_for_pending_ops_and_rejects_new_ones() {
    let map = Arc::new(GateMap::new());
    let svc = Service::start(
        Arc::clone(&map),
        ServiceConfig {
            cores: 1,
            ring_capacity: 64,
            max_batch: 8,
            ..ServiceConfig::default()
        },
    );
    let client = svc.client();
    // One op parked in the worker, ten more accepted behind it.
    let gate_pending = client.try_submit(GATE_KEY, OpKind::Get).unwrap();
    map.wait_blocked();
    let queued = client
        .submit_batch((0..10).map(|k| (k, OpKind::Insert(k))))
        .unwrap();
    // Shut down from another thread: it must block until the worker can
    // drain, because every accepted op executes before the workers exit.
    let shutter = std::thread::spawn(move || svc.shutdown());
    let start = std::time::Instant::now();
    while !client.is_shutting_down() {
        assert!(start.elapsed() < std::time::Duration::from_secs(30));
        std::thread::yield_now();
    }
    // Intake is closed while the backlog is still pending.
    let err = client.insert(500, 1).unwrap_err();
    assert_eq!(err.reason, ServiceError::ShuttingDown);
    assert!(!shutter.is_finished(), "shutdown returned with ops pending");
    // Release the gate: the backlog drains, then shutdown completes.
    map.release.store(true, Ordering::SeqCst);
    let stats = shutter.join().unwrap();
    assert_eq!(gate_pending.wait().unwrap(), Reply::Got(None));
    for f in queued {
        assert!(f.wait().unwrap().inserted(), "accepted op was dropped");
    }
    assert_eq!(stats.aggregate().ops, 11);
    assert_eq!(map.inner.len(), 10);
}
