//! Every algorithm in the library, exercised through the harness's trait
//! object against a sequential model.

mod common;

use csds::harness::AlgoKind;

#[test]
fn all_algorithms_match_btreemap_sequentially() {
    for algo in AlgoKind::all() {
        let map = algo.make(128);
        common::model_check(map.as_ref(), 2_500, 96, 0xA11C0DE);
    }
}

#[test]
fn all_algorithms_handle_empty_and_full_edges() {
    for algo in AlgoKind::all() {
        let map = algo.make(16);
        let name = algo.name();
        // Empty-structure queries.
        assert_eq!(map.get(3), None, "{name}");
        assert_eq!(map.remove(3), None, "{name}");
        assert!(map.is_empty(), "{name}");
        // Fill a dense range, drain it completely, refill.
        for k in 0..32 {
            assert!(map.insert(k, k * 7), "{name} insert {k}");
        }
        assert_eq!(map.len(), 32, "{name}");
        for k in 0..32 {
            assert_eq!(map.get(k), Some(k * 7), "{name} get {k}");
        }
        for k in 0..32 {
            assert_eq!(map.remove(k), Some(k * 7), "{name} remove {k}");
        }
        assert!(map.is_empty(), "{name} after drain");
        for k in (0..32).rev() {
            assert!(map.insert(k, k), "{name} reinsert {k}");
        }
        assert_eq!(map.len(), 32, "{name} after refill");
    }
}

#[test]
fn values_are_independent_of_keys() {
    // Structures must not assume value == key (the harness does that, the
    // library must not).
    for algo in AlgoKind::all() {
        let map = algo.make(16);
        assert!(map.insert(5, 999));
        assert!(map.insert(6, 0));
        assert_eq!(map.get(5), Some(999), "{}", algo.name());
        assert_eq!(map.remove(6), Some(0), "{}", algo.name());
    }
}
