//! Every algorithm in the library, exercised through the harness's trait
//! object against a sequential model — through both call paths: the
//! pin-per-op `ConcurrentMap` traits and the guard-reuse `MapHandle`
//! sessions.

mod common;

use csds::core::{ConcurrentMap, MAX_USER_KEY};
use csds::harness::AlgoKind;

#[test]
fn all_algorithms_match_btreemap_sequentially() {
    for algo in AlgoKind::all() {
        let map = algo.make(128);
        common::model_check(map.as_ref(), 2_500, 96, 0xA11C0DE);
    }
}

#[test]
fn all_algorithms_match_btreemap_through_handles() {
    // The repin path must agree with the sequential model exactly like the
    // pin-per-op path does.
    for algo in AlgoKind::all() {
        let map = algo.make_guarded(128);
        common::model_check_handle(map.as_ref(), 2_500, 96, 0x5E55_10AA);
    }
}

#[test]
fn all_algorithms_concurrent_net_effect_through_handles() {
    use std::sync::Arc;
    for algo in AlgoKind::all() {
        let map = Arc::new(algo.make_guarded(64));
        common::net_effect_handle(map, 3, 1_500, 32);
    }
}

#[test]
fn all_algorithms_match_btreemap_on_the_compound_vocabulary() {
    // upsert / CAS / closure RMW through the pin-per-op trait object.
    for algo in AlgoKind::all() {
        let map = algo.make(128);
        common::compound_model_check(map.as_ref(), 2_500, 96, 0xC0_FF_EE);
    }
}

#[test]
fn all_algorithms_match_btreemap_on_the_compound_vocabulary_through_handles() {
    // The same vocabulary through a MapHandle session, plus the generic
    // `update` / `get_or_insert_with` wrappers.
    for algo in AlgoKind::all() {
        let map = algo.make_guarded(128);
        common::compound_model_check_handle(map.as_ref(), 2_500, 96, 0xBEE5);
    }
}

#[test]
fn all_algorithms_closure_rmw_is_atomic_under_contention() {
    // A counter served by fetch-add RMWs: any lost update (a non-atomic
    // read-modify-write window) makes the final sum come up short.
    use std::sync::Arc;
    for algo in AlgoKind::all() {
        let map = Arc::new(algo.make_guarded(16));
        common::concurrent_counter_sum(map, 4, 2_000, 8);
    }
}

#[test]
fn all_algorithms_cas_loops_converge_under_contention() {
    // Optimistic CAS increment loops: every one of N*M increments must
    // land exactly once even when every retry races every other thread.
    use std::sync::Arc;
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 500;
    for algo in AlgoKind::all() {
        let map = Arc::new(algo.make_guarded(16));
        assert!(map.insert(7, 0), "{}", algo.name());
        let mut workers = Vec::new();
        for _ in 0..THREADS {
            let map = Arc::clone(&map);
            workers.push(std::thread::spawn(move || {
                let mut h = csds::core::MapHandle::new(map.as_ref().as_ref());
                for _ in 0..PER_THREAD {
                    loop {
                        let cur = *h.get(7).expect("counter stays present");
                        if h.compare_swap(7, &cur, cur + 1).swapped() {
                            break;
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            map.get(7),
            Some(THREADS as u64 * PER_THREAD),
            "{}: CAS increments lost",
            algo.name()
        );
    }
}

/// The four structures that carry the optimistic version-validated fast
/// paths (seqlock reads, validate-then-lock RMW).
const OPTIMISTIC_ALGOS: [AlgoKind; 4] = [
    AlgoKind::LazyHashTable,
    AlgoKind::CouplingHashTable,
    AlgoKind::ElasticHashTable,
    AlgoKind::BstTk,
];

#[test]
fn optimistic_structures_conform_with_fast_paths_on_and_off() {
    // Same binary, toggled at run time: the optimistic paths (validated
    // unsynchronized parses) and the pessimistic pre-PR paths must both
    // match the sequential model, through both call paths and the full
    // compound vocabulary.
    for enabled in [true, false] {
        csds::sync::with_optimistic_fast_paths(enabled, || {
            for algo in OPTIMISTIC_ALGOS {
                let map = algo.make(128);
                common::model_check(map.as_ref(), 2_500, 96, 0x0B71 ^ enabled as u64);
                let map = algo.make(128);
                common::compound_model_check(map.as_ref(), 2_500, 96, 0xFA57 ^ enabled as u64);
                let map = algo.make_guarded(128);
                common::compound_model_check_handle(
                    map.as_ref(),
                    2_500,
                    96,
                    0x5EC ^ enabled as u64,
                );
            }
        });
    }
}

#[test]
fn optimistic_rmw_stays_atomic_under_contention_in_both_toggle_states() {
    // The validate-then-lock fetch-add must lose no updates whether the
    // unsynchronized-parse fast path or the lock-first path serves it.
    use std::sync::Arc;
    for enabled in [true, false] {
        csds::sync::with_optimistic_fast_paths(enabled, || {
            for algo in OPTIMISTIC_ALGOS {
                let map = Arc::new(algo.make_guarded(16));
                common::concurrent_counter_sum(map, 4, 2_000, 8);
            }
        });
    }
}

#[test]
fn all_algorithms_handle_empty_and_full_edges() {
    for algo in AlgoKind::all() {
        let map = algo.make(16);
        let name = algo.name();
        // Empty-structure queries.
        assert_eq!(map.get(3), None, "{name}");
        assert_eq!(map.remove(3), None, "{name}");
        assert!(map.is_empty(), "{name}");
        // Fill a dense range, drain it completely, refill.
        for k in 0..32 {
            assert!(map.insert(k, k * 7), "{name} insert {k}");
        }
        assert_eq!(map.len(), 32, "{name}");
        for k in 0..32 {
            assert_eq!(map.get(k), Some(k * 7), "{name} get {k}");
        }
        for k in 0..32 {
            assert_eq!(map.remove(k), Some(k * 7), "{name} remove {k}");
        }
        assert!(map.is_empty(), "{name} after drain");
        for k in (0..32).rev() {
            assert!(map.insert(k, k), "{name} reinsert {k}");
        }
        assert_eq!(map.len(), 32, "{name} after refill");
    }
}

#[test]
fn is_empty_overrides_agree_with_len_through_churn() {
    // Regression for the O(n) `is_empty_in` default: the early-exit
    // overrides (hash tables, elastic table, skiplists, lists, BST) must
    // agree with `len_in == 0` at every point of an insert/remove/upsert
    // churn, through both the guard-scoped and the pin-per-op paths.
    for algo in AlgoKind::all() {
        let map = algo.make_guarded(32);
        let name = algo.name();
        let mut rng = common::rng_stream(0xE4417 ^ 0xB00);
        let guard = csds::ebr::pin();
        assert!(map.is_empty_in(&guard), "{name}: fresh map");
        for i in 0..600u64 {
            let key = rng() % 24;
            match rng() % 4 {
                0 => {
                    map.insert_in(key, key, &guard);
                }
                1 => {
                    map.remove_in(key, &guard);
                }
                2 => {
                    map.upsert_in(key, key + 1, &guard);
                }
                _ => {
                    map.remove_in(rng() % 24, &guard);
                }
            }
            assert_eq!(
                map.is_empty_in(&guard),
                map.len_in(&guard) == 0,
                "{name}: is_empty_in vs len_in at op {i}"
            );
        }
        for k in 0..24 {
            map.remove_in(k, &guard);
        }
        assert!(map.is_empty_in(&guard), "{name}: after full drain");
        assert!(map.is_empty(), "{name}: pin-per-op path after drain");
    }
}

#[test]
fn documented_key_range_round_trips_on_every_structure() {
    // The documented user key range is 0 ..= u64::MAX - 2; its extremes
    // must round-trip through every structure and both call paths.
    let boundary = [0u64, 1, MAX_USER_KEY - 1, MAX_USER_KEY];
    for algo in AlgoKind::all() {
        let name = algo.name();
        let map = algo.make_guarded(16);
        for (i, &k) in boundary.iter().enumerate() {
            assert!(map.insert(k, i as u64), "{name} insert {k}");
        }
        let mut h = csds::core::MapHandle::new(map.as_ref());
        for (i, &k) in boundary.iter().enumerate() {
            assert_eq!(h.get(k), Some(&(i as u64)), "{name} get {k}");
        }
        drop(h);
        for (i, &k) in boundary.iter().enumerate() {
            assert_eq!(map.remove(k), Some(i as u64), "{name} remove {k}");
        }
        assert!(map.is_empty(), "{name}");
    }
}

#[test]
fn reserved_keys_are_rejected_at_the_boundary() {
    // u64::MAX and u64::MAX - 1 are internal sentinels, rejected with a
    // hard assert at every entry point in every build profile — the
    // sentinel-encoded structures through the key encoding, the hash
    // tables and BST through an explicit boundary check.
    for algo in AlgoKind::all() {
        for reserved in [u64::MAX, u64::MAX - 1] {
            let map = algo.make(16);
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                map.insert(reserved, 1);
            }))
            .is_err();
            assert!(
                panicked,
                "{}: reserved key {reserved:#x} must be rejected",
                algo.name()
            );
        }
    }
}

#[test]
fn elastic_conformance_survives_growth_through_both_call_paths() {
    // AlgoKind::all() already sweeps ElasticHashTable through every test in
    // this file at a stationary size; this one drives both call paths
    // across a 16× growth so the model comparison runs concurrently with
    // migrations. make(16) starts the table at 16 buckets; 1 000 distinct
    // keys force repeated doubling on every shard.
    let map = AlgoKind::ElasticHashTable.make_guarded(16);
    // Pin-per-op path while growing.
    for k in 0..500u64 {
        assert!(map.insert(k, k * 11), "insert {k}");
    }
    // Handle (repin) path while growing further.
    let mut h = csds::core::MapHandle::new(map.as_ref());
    for k in 500..1000u64 {
        assert!(h.insert(k, k * 11), "handle insert {k}");
    }
    for k in 0..1000u64 {
        assert_eq!(h.get(k), Some(&(k * 11)), "handle get {k} after growth");
    }
    drop(h);
    for k in 0..1000u64 {
        assert_eq!(map.get(k), Some(k * 11), "get {k} after growth");
        assert_eq!(map.remove(k), Some(k * 11), "remove {k}");
    }
    assert!(map.is_empty());
}

#[test]
fn values_are_independent_of_keys() {
    // Structures must not assume value == key (the harness does that, the
    // library must not).
    for algo in AlgoKind::all() {
        let map = algo.make(16);
        assert!(map.insert(5, 999));
        assert!(map.insert(6, 0));
        assert_eq!(map.get(5), Some(999), "{}", algo.name());
        assert_eq!(map.remove(6), Some(0), "{}", algo.name());
    }
}
