//! Shared drivers for the cross-crate integration tests.

// Each test binary compiles this module separately and uses a subset of it.
#![allow(dead_code)]

use csds_sync::atomic::{AtomicU64, Ordering};
use std::collections::BTreeMap;
use std::sync::Arc;

use csds::core::{ConcurrentMap, GuardedMap, MapHandle};

/// Deterministic xorshift stream for test workloads.
pub fn rng_stream(mut state: u64) -> impl FnMut() -> u64 {
    if state == 0 {
        state = 0x9E3779B97F4A7C15;
    }
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Sequential comparison against `BTreeMap` through the trait object the
/// harness uses.
pub fn model_check(map: &dyn ConcurrentMap<u64>, ops: u64, key_range: u64, seed: u64) {
    let mut model = BTreeMap::new();
    let mut rng = rng_stream(seed);
    for i in 0..ops {
        let key = rng() % key_range;
        match rng() % 3 {
            0 => {
                let expected = !model.contains_key(&key);
                assert_eq!(map.insert(key, i), expected, "insert({key}) at {i}");
                if expected {
                    model.insert(key, i);
                }
            }
            1 => {
                assert_eq!(map.remove(key), model.remove(&key), "remove({key}) at {i}");
            }
            _ => {
                assert_eq!(map.get(key), model.get(&key).copied(), "get({key}) at {i}");
            }
        }
    }
    assert_eq!(map.len(), model.len());
}

/// Sequential comparison against `BTreeMap` through a [`MapHandle`]
/// session (the guard-reuse / repin path), proving it agrees with the
/// pin-per-op trait path exercised by [`model_check`].
pub fn model_check_handle(map: &dyn GuardedMap<u64>, ops: u64, key_range: u64, seed: u64) {
    let mut h = MapHandle::new(map);
    let mut model = BTreeMap::new();
    let mut rng = rng_stream(seed);
    for i in 0..ops {
        let key = rng() % key_range;
        match rng() % 3 {
            0 => {
                let expected = !model.contains_key(&key);
                assert_eq!(h.insert(key, i), expected, "insert({key}) at {i}");
                if expected {
                    model.insert(key, i);
                }
            }
            1 => {
                assert_eq!(h.remove(key), model.remove(&key), "remove({key}) at {i}");
            }
            _ => {
                assert_eq!(
                    h.get(key).copied(),
                    model.get(&key).copied(),
                    "get({key}) at {i}"
                );
            }
        }
    }
    assert_eq!(h.len(), model.len());
    assert_eq!(h.ops(), ops + 1, "handle op accounting");
}

/// Sequential comparison against `BTreeMap` over the **compound
/// vocabulary** (upsert / CAS / closure RMW / get-or-insert) through the
/// pin-per-op trait object, also asserting `is_empty` stays consistent
/// with `len` throughout.
pub fn compound_model_check(map: &dyn ConcurrentMap<u64>, ops: u64, key_range: u64, seed: u64) {
    use csds::core::CasOutcome;
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = rng_stream(seed);
    for i in 0..ops {
        let key = rng() % key_range;
        let v = rng() % 8;
        match rng() % 6 {
            0 => {
                let expected = !model.contains_key(&key);
                assert_eq!(map.insert(key, v), expected, "insert({key}) at {i}");
                if expected {
                    model.insert(key, v);
                }
            }
            1 => {
                assert_eq!(map.remove(key), model.remove(&key), "remove({key}) at {i}");
            }
            2 => {
                assert_eq!(
                    map.upsert(key, v),
                    model.insert(key, v),
                    "upsert({key}) at {i}"
                );
            }
            3 => {
                let expected_val = rng() % 8;
                let got = map.compare_swap(key, &expected_val, v);
                let want = match model.get(&key) {
                    Some(&cur) if cur == expected_val => {
                        model.insert(key, v);
                        CasOutcome::Swapped(cur)
                    }
                    Some(&cur) => CasOutcome::Mismatch(cur),
                    None => CasOutcome::Absent,
                };
                assert_eq!(got, want, "compare_swap({key}) at {i}");
            }
            4 => {
                // Closure RMW through the object-safe root: fetch-add.
                let (prev, cur, applied) = map.rmw(key, &mut |c| Some(c.copied().unwrap_or(0) + 1));
                let mprev = model.get(&key).copied();
                let mnew = mprev.unwrap_or(0) + 1;
                model.insert(key, mnew);
                assert_eq!(prev, mprev, "rmw prev({key}) at {i}");
                assert_eq!(cur, Some(mnew), "rmw cur({key}) at {i}");
                assert!(applied, "rmw applied({key}) at {i}");
            }
            _ => {
                assert_eq!(map.get(key), model.get(&key).copied(), "get({key}) at {i}");
            }
        }
        if i % 64 == 0 {
            assert_eq!(map.is_empty(), model.is_empty(), "is_empty at {i}");
        }
    }
    assert_eq!(map.len(), model.len());
    for (&k, &v) in &model {
        assert_eq!(map.get(k), Some(v), "final content at {k}");
    }
}

/// The compound-vocabulary model comparison through a [`MapHandle`]
/// session (guard-reuse path). Update and get-or-insert shapes run through
/// the object-safe `rmw` root (the generic `update` / `get_or_insert_with`
/// wrappers, which need a sized map type, are covered by `csds_core`'s
/// unit tests).
pub fn compound_model_check_handle<M: csds::core::GuardedMap<u64> + ?Sized>(
    map: &M,
    ops: u64,
    key_range: u64,
    seed: u64,
) {
    use csds::core::CasOutcome;
    let mut h = MapHandle::new(map);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = rng_stream(seed);
    for i in 0..ops {
        let key = rng() % key_range;
        let v = rng() % 8;
        match rng() % 7 {
            0 => {
                let expected = !model.contains_key(&key);
                assert_eq!(h.insert(key, v), expected, "insert({key}) at {i}");
                if expected {
                    model.insert(key, v);
                }
            }
            1 => {
                assert_eq!(h.remove(key), model.remove(&key), "remove({key}) at {i}");
            }
            2 => {
                assert_eq!(
                    h.upsert(key, v),
                    model.insert(key, v),
                    "upsert({key}) at {i}"
                );
            }
            3 => {
                let expected_val = rng() % 8;
                let got = h.compare_swap(key, &expected_val, v);
                let want = match model.get(&key) {
                    Some(&cur) if cur == expected_val => {
                        model.insert(key, v);
                        CasOutcome::Swapped(cur)
                    }
                    Some(&cur) => CasOutcome::Mismatch(cur),
                    None => CasOutcome::Absent,
                };
                assert_eq!(got, want, "compare_swap({key}) at {i}");
            }
            4 => {
                // The update shape (existing keys only) through `rmw`.
                let got = h.rmw(key, &mut |c| c.map(|v| v.wrapping_mul(3))).prev;
                let want = model.get(&key).copied();
                if let Some(cur) = want {
                    model.insert(key, cur.wrapping_mul(3));
                }
                assert_eq!(got, want, "update({key}) at {i}");
            }
            5 => {
                // The get-or-insert shape through `rmw`.
                let got = h
                    .rmw(key, &mut |c| if c.is_none() { Some(v) } else { None })
                    .cur
                    .copied();
                let want = *model.entry(key).or_insert(v);
                assert_eq!(got, Some(want), "get_or_insert({key}) at {i}");
            }
            _ => {
                assert_eq!(
                    h.get(key).copied(),
                    model.get(&key).copied(),
                    "get({key}) at {i}"
                );
            }
        }
    }
    assert_eq!(h.len(), model.len());
    for (&k, &v) in &model {
        assert_eq!(h.get(k).copied(), Some(v), "final content at {k}");
    }
}

/// Concurrent atomicity of the closure RMW: `threads` workers each bump
/// `per_thread` counters spread over `keys`; a single lost update makes the
/// final sum come up short.
pub fn concurrent_counter_sum(
    map: Arc<Box<dyn GuardedMap<u64>>>,
    threads: usize,
    per_thread: u64,
    keys: u64,
) {
    let mut workers = Vec::new();
    for t in 0..threads {
        let map = Arc::clone(&map);
        workers.push(std::thread::spawn(move || {
            let mut h = MapHandle::new(map.as_ref().as_ref());
            let mut rng = rng_stream(0xC0FFEE ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            for _ in 0..per_thread {
                let key = rng() % keys;
                let out = h.rmw(key, &mut |c| Some(c.copied().unwrap_or(0) + 1));
                assert!(out.applied);
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    let mut verifier = MapHandle::new(map.as_ref().as_ref());
    let total: u64 = (0..keys)
        .map(|k| verifier.get(k).copied().unwrap_or(0))
        .sum();
    assert_eq!(
        total,
        threads as u64 * per_thread,
        "lost updates: the closure RMW must be atomic"
    );
}

/// Concurrent net-effect invariant through one [`MapHandle`] per worker
/// thread (the harness's hot-loop configuration).
pub fn net_effect_handle(
    map: Arc<Box<dyn GuardedMap<u64>>>,
    threads: usize,
    ops_per_thread: u64,
    key_range: u64,
) {
    let ins: Arc<Vec<AtomicU64>> = Arc::new((0..key_range).map(|_| AtomicU64::new(0)).collect());
    let rem: Arc<Vec<AtomicU64>> = Arc::new((0..key_range).map(|_| AtomicU64::new(0)).collect());
    let mut handles = Vec::new();
    for t in 0..threads {
        let map = Arc::clone(&map);
        let ins = Arc::clone(&ins);
        let rem = Arc::clone(&rem);
        handles.push(std::thread::spawn(move || {
            let mut h = MapHandle::new(map.as_ref().as_ref());
            let mut rng = rng_stream(0xFACE ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            for _ in 0..ops_per_thread {
                let key = rng() % key_range;
                match rng() % 3 {
                    0 => {
                        if h.insert(key, key) {
                            ins[key as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    1 => {
                        if h.remove(key).is_some() {
                            rem[key as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    _ => {
                        if let Some(&v) = h.get(key) {
                            assert_eq!(v, key, "value corruption at {key}");
                        }
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut verifier = MapHandle::new(map.as_ref().as_ref());
    let mut expected = 0usize;
    for k in 0..key_range as usize {
        let net = ins[k].load(Ordering::Relaxed) as i64 - rem[k].load(Ordering::Relaxed) as i64;
        assert!((0..=1).contains(&net), "key {k}: net {net}");
        assert_eq!(verifier.get(k as u64).is_some(), net == 1, "key {k}");
        expected += net as usize;
    }
    assert_eq!(verifier.len(), expected);
}

/// Concurrent net-effect invariant through trait objects.
pub fn net_effect(
    map: Arc<Box<dyn ConcurrentMap<u64>>>,
    threads: usize,
    ops_per_thread: u64,
    key_range: u64,
) {
    let ins: Arc<Vec<AtomicU64>> = Arc::new((0..key_range).map(|_| AtomicU64::new(0)).collect());
    let rem: Arc<Vec<AtomicU64>> = Arc::new((0..key_range).map(|_| AtomicU64::new(0)).collect());
    let mut handles = Vec::new();
    for t in 0..threads {
        let map = Arc::clone(&map);
        let ins = Arc::clone(&ins);
        let rem = Arc::clone(&rem);
        handles.push(std::thread::spawn(move || {
            let mut rng = rng_stream(0xBEEF ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            for _ in 0..ops_per_thread {
                let key = rng() % key_range;
                match rng() % 3 {
                    0 => {
                        if map.insert(key, key) {
                            ins[key as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    1 => {
                        if map.remove(key).is_some() {
                            rem[key as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    _ => {
                        if let Some(v) = map.get(key) {
                            assert_eq!(v, key, "value corruption at {key}");
                        }
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut expected = 0usize;
    for k in 0..key_range as usize {
        let net = ins[k].load(Ordering::Relaxed) as i64 - rem[k].load(Ordering::Relaxed) as i64;
        assert!((0..=1).contains(&net), "key {k}: net {net}");
        assert_eq!(map.get(k as u64).is_some(), net == 1, "key {k}");
        expected += net as usize;
    }
    assert_eq!(map.len(), expected);
}
