//! Lint gate: importing the std atomics directly is forbidden outside the
//! seam.
//!
//! Every crate in this workspace must import its atomics through
//! `csds_sync::atomic` so that the `modelcheck` feature can swap in the
//! `csds_modelcheck` shims and run the production protocols under the
//! exhaustive interleaving checker. A stray direct import silently opts
//! that code out of model checking — this test makes it a CI failure
//! instead.
//!
//! The check is textual (source scan), so it also catches references in
//! doc examples and comments; keep those speaking in terms of the seam.

use std::path::{Path, PathBuf};

/// Files (exact relative path) and directories (trailing `/`) where the raw
/// `std` atomics are legitimate. Keep this list short and each entry
/// justified.
const ALLOWLIST: &[&str] = &[
    // The seam itself: the pass-through re-export of the std types.
    "crates/sync/src/atomic.rs",
    // csds_metrics sits *below* csds_sync in the dependency graph, so it
    // carries its own copy of the seam (same pattern, optional
    // csds_modelcheck shims) plus the documented `plain` escape hatch for
    // telemetry state that must not create model scheduling points.
    "crates/metrics/src/atomic.rs",
    // OPTIMISTIC_FAST_PATHS: a test-configuration flag, documented in place
    // as deliberately unshimmed (it is not protocol state, and a scheduling
    // point per optimistic op would bloat every model).
    "crates/sync/src/lib.rs",
    // The model checker implements the shims on top of the std atomics.
    "crates/modelcheck/",
    // Local stand-ins for external crates (criterion/proptest): external
    // idiom, never model-checked.
    "crates/shims/",
];

fn allowed(rel: &str) -> bool {
    ALLOWLIST.iter().any(|a| {
        if a.ends_with('/') {
            rel.starts_with(a)
        } else {
            rel == *a
        }
    })
}

fn collect_rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Skip build output and VCS metadata.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_raw_std_atomics_outside_the_seam() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    // Assembled at runtime so this file does not match its own pattern.
    let pattern = format!("std::sync::{}", "atomic");

    let mut sources = Vec::new();
    collect_rust_sources(root, &mut sources);
    assert!(
        sources.len() > 50,
        "source walk looks broken: only {} .rs files found",
        sources.len()
    );

    let mut violations = Vec::new();
    for path in sources {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if allowed(&rel) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            if line.contains(&pattern) {
                violations.push(format!("  {}:{}: {}", rel, i + 1, line.trim()));
            }
        }
    }

    assert!(
        violations.is_empty(),
        "raw std atomics outside the csds_sync::atomic seam (these opt out \
         of model checking; import from csds_sync::atomic, or justify an \
         allowlist entry in {}):\n{}",
        file!(),
        violations.join("\n")
    );
}

/// The inverse guard: the allowlist must not rot. Every entry still exists
/// and (for the two exact files) still contains the pattern it was
/// allowlisted for.
#[test]
fn allowlist_entries_are_live() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let pattern = format!("std::sync::{}", "atomic");
    for a in ALLOWLIST {
        let path = root.join(a.trim_end_matches('/'));
        assert!(path.exists(), "stale allowlist entry: {a}");
        if !a.ends_with('/') {
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(
                text.contains(&pattern),
                "allowlist entry {a} no longer uses raw std atomics; drop it"
            );
        }
    }
}
