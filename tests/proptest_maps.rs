//! Property-based tests: arbitrary operation sequences against a model,
//! for each representative algorithm, plus distribution properties of the
//! workload generators.

use std::collections::BTreeMap;

use csds::harness::AlgoKind;
use csds::workload::{FastRng, KeyDist, KeySampler};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    /// Insert-or-replace.
    Upsert(u64, u64),
    /// Value CAS; the comparand is drawn from the same small space as the
    /// inserted values so matches actually occur.
    Cas(u64, u64, u64),
    /// Closure RMW on existing keys (multiply by an odd constant).
    Update(u64),
    /// Atomic get-or-insert.
    GetOrInsert(u64, u64),
    /// Membership probe — the optimistic `contains_in` fast path.
    Contains(u64),
    /// Unconditional counter RMW — always applies, so it exercises the
    /// insert-if-absent arm of the validate-then-lock protocol (the one
    /// `Update`'s `c.map(..)` closure never reaches).
    FetchAdd(u64),
}

/// Values are drawn from a small space so CAS comparands collide with live
/// values often enough to exercise the `Swapped` arm.
fn small_value() -> impl Strategy<Value = u64> {
    0u64..8
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0..key_range, small_value()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0..key_range).prop_map(MapOp::Remove),
        (0..key_range).prop_map(MapOp::Get),
        (0..key_range, small_value()).prop_map(|(k, v)| MapOp::Upsert(k, v)),
        (0..key_range, small_value(), small_value()).prop_map(|(k, e, v)| MapOp::Cas(k, e, v)),
        (0..key_range).prop_map(MapOp::Update),
        (0..key_range, small_value()).prop_map(|(k, v)| MapOp::GetOrInsert(k, v)),
        (0..key_range).prop_map(MapOp::Contains),
        (0..key_range).prop_map(MapOp::FetchAdd),
    ]
}

fn run_against_model(algo: AlgoKind, ops: &[MapOp]) {
    let map = algo.make(64);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            MapOp::Insert(k, v) => {
                let expected = !model.contains_key(&k);
                assert_eq!(
                    map.insert(k, v),
                    expected,
                    "{}: insert({k}) at {i}",
                    algo.name()
                );
                if expected {
                    model.insert(k, v);
                }
            }
            MapOp::Remove(k) => {
                assert_eq!(
                    map.remove(k),
                    model.remove(&k),
                    "{}: remove({k}) at {i}",
                    algo.name()
                );
            }
            MapOp::Get(k) => {
                assert_eq!(
                    map.get(k),
                    model.get(&k).copied(),
                    "{}: get({k}) at {i}",
                    algo.name()
                );
            }
            MapOp::Upsert(k, v) => {
                assert_eq!(
                    map.upsert(k, v),
                    model.insert(k, v),
                    "{}: upsert({k}) at {i}",
                    algo.name()
                );
            }
            MapOp::Cas(k, expected, v) => {
                use csds::core::CasOutcome;
                let got = map.compare_swap(k, &expected, v);
                let want = match model.get(&k) {
                    Some(&cur) if cur == expected => {
                        model.insert(k, v);
                        CasOutcome::Swapped(cur)
                    }
                    Some(&cur) => CasOutcome::Mismatch(cur),
                    None => CasOutcome::Absent,
                };
                assert_eq!(got, want, "{}: compare_swap({k}) at {i}", algo.name());
            }
            MapOp::Update(k) => {
                let (prev, cur, applied) = map.rmw(k, &mut |c| c.map(|v| v.wrapping_mul(3)));
                let want = model.get(&k).copied();
                if let Some(w) = want {
                    model.insert(k, w.wrapping_mul(3));
                }
                assert_eq!(prev, want, "{}: update({k}) at {i}", algo.name());
                assert_eq!(
                    cur,
                    model.get(&k).copied(),
                    "{}: update cur({k}) at {i}",
                    algo.name()
                );
                assert_eq!(
                    applied,
                    want.is_some(),
                    "{}: update applied({k})",
                    algo.name()
                );
            }
            MapOp::GetOrInsert(k, v) => {
                let (_, cur, _) = map.rmw(k, &mut |c| if c.is_none() { Some(v) } else { None });
                let want = *model.entry(k).or_insert(v);
                assert_eq!(
                    cur,
                    Some(want),
                    "{}: get_or_insert({k}) at {i}",
                    algo.name()
                );
            }
            MapOp::Contains(k) => {
                assert_eq!(
                    map.contains(k),
                    model.contains_key(&k),
                    "{}: contains({k}) at {i}",
                    algo.name()
                );
            }
            MapOp::FetchAdd(k) => {
                let (prev, cur, applied) =
                    map.rmw(k, &mut |c| Some(c.copied().unwrap_or(0).wrapping_add(1)));
                let want_prev = model.get(&k).copied();
                let new = want_prev.unwrap_or(0).wrapping_add(1);
                model.insert(k, new);
                assert_eq!(
                    prev,
                    want_prev,
                    "{}: fetch_add prev({k}) at {i}",
                    algo.name()
                );
                assert_eq!(cur, Some(new), "{}: fetch_add cur({k}) at {i}", algo.name());
                assert!(applied, "{}: fetch_add applied({k}) at {i}", algo.name());
            }
        }
    }
    assert_eq!(map.len(), model.len(), "{}", algo.name());
    for (&k, &v) in &model {
        assert_eq!(map.get(k), Some(v), "{}: final get({k})", algo.name());
    }
}

macro_rules! model_prop {
    ($name:ident, $algo:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
            #[test]
            fn $name(ops in proptest::collection::vec(op_strategy(24), 1..200)) {
                run_against_model($algo, &ops);
            }
        }
    };
}

model_prop!(lazy_list_obeys_model, AlgoKind::LazyList);
model_prop!(lazy_list_elided_obeys_model, AlgoKind::LazyListElided);
model_prop!(coupling_list_obeys_model, AlgoKind::CouplingList);
model_prop!(harris_list_obeys_model, AlgoKind::HarrisList);
model_prop!(waitfree_list_obeys_model, AlgoKind::WaitFreeList);
model_prop!(herlihy_skiplist_obeys_model, AlgoKind::HerlihySkipList);
model_prop!(pugh_skiplist_obeys_model, AlgoKind::PughSkipList);
model_prop!(lockfree_skiplist_obeys_model, AlgoKind::LockFreeSkipList);
model_prop!(lazy_hashtable_obeys_model, AlgoKind::LazyHashTable);
model_prop!(cow_hashtable_obeys_model, AlgoKind::CowHashTable);
model_prop!(elastic_hashtable_obeys_model, AlgoKind::ElasticHashTable);
model_prop!(bst_tk_obeys_model, AlgoKind::BstTk);
model_prop!(bst_tk_elided_obeys_model, AlgoKind::BstTkElided);

/// How often the elastic churn test interleaves a `len` assertion.
const LEN_CHECK_PERIOD: usize = 32;

/// The elastic table with deliberately tiny shards and a one-bucket
/// migration quantum, driven through grow/shrink threshold crossings: the
/// op sequence front-loads inserts over a wide key range (growth), then
/// biases toward removes (shrink), with arbitrary operations mixed in, so
/// most of the sequence runs with a migration in flight.
///
/// Every [`LEN_CHECK_PERIOD`] operations the test also asserts `len`
/// (`len_in` under the blanket wrapper) against the model — with a
/// one-bucket quantum most of those counts run mid-migration, locking in
/// the PR 4 fix for the old-table/new-table double count property-style.
fn run_elastic_churn_against_model(grow: &[MapOp], drain: &[MapOp]) {
    use csds::elastic::{ElasticConfig, ElasticHashTable};
    let map = ElasticHashTable::<u64>::with_config(ElasticConfig {
        shards: 2,
        initial_buckets: 2,
        min_buckets: 2,
        migration_quantum: 1,
        counter_cells: 2,
    });
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    fn check(
        map: &csds::elastic::ElasticHashTable<u64>,
        model: &mut BTreeMap<u64, u64>,
        op: &MapOp,
        i: usize,
    ) {
        match *op {
            MapOp::Insert(k, v) => {
                let expected = !model.contains_key(&k);
                assert_eq!(
                    csds::core::ConcurrentMap::insert(map, k, v),
                    expected,
                    "elastic churn: insert({k}) at {i}"
                );
                if expected {
                    model.insert(k, v);
                }
            }
            MapOp::Remove(k) => {
                assert_eq!(
                    csds::core::ConcurrentMap::remove(map, k),
                    model.remove(&k),
                    "elastic churn: remove({k}) at {i}"
                );
            }
            MapOp::Get(k) => {
                assert_eq!(
                    csds::core::ConcurrentMap::get(map, k),
                    model.get(&k).copied(),
                    "elastic churn: get({k}) at {i}"
                );
            }
            MapOp::Upsert(k, v) => {
                assert_eq!(
                    csds::core::ConcurrentMap::upsert(map, k, v),
                    model.insert(k, v),
                    "elastic churn: upsert({k}) at {i}"
                );
            }
            MapOp::Cas(k, expected, v) => {
                use csds::core::CasOutcome;
                let got = csds::core::ConcurrentMap::compare_swap(map, k, &expected, v);
                let want = match model.get(&k) {
                    Some(&cur) if cur == expected => {
                        model.insert(k, v);
                        CasOutcome::Swapped(cur)
                    }
                    Some(&cur) => CasOutcome::Mismatch(cur),
                    None => CasOutcome::Absent,
                };
                assert_eq!(got, want, "elastic churn: compare_swap({k}) at {i}");
            }
            MapOp::Update(k) => {
                let (prev, _, _) =
                    csds::core::ConcurrentMap::rmw(map, k, &mut |c| c.map(|v| v.wrapping_mul(3)));
                let want = model.get(&k).copied();
                if let Some(w) = want {
                    model.insert(k, w.wrapping_mul(3));
                }
                assert_eq!(prev, want, "elastic churn: update({k}) at {i}");
            }
            MapOp::GetOrInsert(k, v) => {
                let (_, cur, _) = csds::core::ConcurrentMap::rmw(map, k, &mut |c| {
                    if c.is_none() {
                        Some(v)
                    } else {
                        None
                    }
                });
                let want = *model.entry(k).or_insert(v);
                assert_eq!(cur, Some(want), "elastic churn: get_or_insert({k}) at {i}");
            }
            MapOp::Contains(k) => {
                assert_eq!(
                    csds::core::ConcurrentMap::contains(map, k),
                    model.contains_key(&k),
                    "elastic churn: contains({k}) at {i}"
                );
            }
            MapOp::FetchAdd(k) => {
                let (prev, cur, applied) = csds::core::ConcurrentMap::rmw(map, k, &mut |c| {
                    Some(c.copied().unwrap_or(0).wrapping_add(1))
                });
                let want_prev = model.get(&k).copied();
                let new = want_prev.unwrap_or(0).wrapping_add(1);
                model.insert(k, new);
                assert_eq!(prev, want_prev, "elastic churn: fetch_add prev({k}) at {i}");
                assert_eq!(cur, Some(new), "elastic churn: fetch_add cur({k}) at {i}");
                assert!(applied, "elastic churn: fetch_add applied({k}) at {i}");
            }
        }
    }
    for (i, op) in grow.iter().enumerate() {
        check(&map, &mut model, op, i);
        if i % LEN_CHECK_PERIOD == 0 {
            assert_eq!(
                csds::core::ConcurrentMap::len(&map),
                model.len(),
                "elastic churn: len at grow op {i} (migration likely in flight)"
            );
        }
    }
    for (i, op) in drain.iter().enumerate() {
        check(&map, &mut model, op, grow.len() + i);
        if i % LEN_CHECK_PERIOD == 0 {
            assert_eq!(
                csds::core::ConcurrentMap::len(&map),
                model.len(),
                "elastic churn: len at drain op {i} (migration likely in flight)"
            );
        }
    }
    assert_eq!(csds::core::ConcurrentMap::len(&map), model.len());
    for (&k, &v) in &model {
        assert_eq!(csds::core::ConcurrentMap::get(&map, k), Some(v));
    }
}

/// Growth-biased op mix over a wide key range, with the optimistic read
/// (`Get`/`Contains`) and RMW (`Update`/`FetchAdd`) arms mixed in so the
/// fast paths run while threshold crossings leave migrations in flight.
fn grow_strategy() -> impl Strategy<Value = Vec<MapOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..256u64, small_value()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            2 => (0..256u64, small_value()).prop_map(|(k, v)| MapOp::Upsert(k, v)),
            1 => (0..256u64, small_value(), small_value())
                .prop_map(|(k, e, v)| MapOp::Cas(k, e, v)),
            1 => (0..256u64).prop_map(MapOp::Update),
            1 => (0..256u64).prop_map(MapOp::FetchAdd),
            1 => (0..256u64).prop_map(MapOp::Remove),
            1 => (0..256u64).prop_map(MapOp::Get),
            1 => (0..256u64).prop_map(MapOp::Contains),
        ],
        100..400,
    )
}

/// Remove-biased counterpart crossing the shrink threshold.
fn drain_strategy() -> impl Strategy<Value = Vec<MapOp>> {
    proptest::collection::vec(
        prop_oneof![
            1 => (0..256u64, small_value()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            4 => (0..256u64).prop_map(MapOp::Remove),
            1 => (0..256u64).prop_map(MapOp::Update),
            1 => (0..256u64).prop_map(MapOp::FetchAdd),
            1 => (0..256u64, small_value(), small_value())
                .prop_map(|(k, e, v)| MapOp::Cas(k, e, v)),
            1 => (0..256u64).prop_map(MapOp::Get),
            1 => (0..256u64).prop_map(MapOp::Contains),
        ],
        100..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
    #[test]
    fn elastic_crossing_grow_and_shrink_thresholds_obeys_model(
        grow in grow_strategy(),
        drain in drain_strategy(),
    ) {
        run_elastic_churn_against_model(&grow, &drain);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The same churn with the optimistic fast paths disabled: every
    /// sequence that ran validated-unsynchronized above must produce the
    /// same model agreement through the pessimistic fallback paths.
    #[test]
    fn elastic_churn_with_fast_paths_disabled_obeys_model(
        grow in grow_strategy(),
        drain in drain_strategy(),
    ) {
        csds::sync::with_optimistic_fast_paths(false, || {
            run_elastic_churn_against_model(&grow, &drain);
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Zipf sampling stays in range and rank popularity is monotone
    /// (statistically) for any range and skew. Compares equal-size head and
    /// tail windows (`k < range/2` vs `k >= range - range/2`): the head
    /// window strictly dominates analytically because per-rank weights are
    /// strictly decreasing, and the empirical head frequency must track the
    /// sampler's own exact probabilities within sampling noise.
    #[test]
    fn zipf_sampler_properties(range in 2u64..512, s in 0.1f64..1.5, seed in any::<u64>()) {
        let sampler = KeySampler::new(KeyDist::Zipf { s }, range);
        let p = sampler.probabilities();
        let w = (range / 2) as usize;
        let head_exact: f64 = p[..w].iter().sum();
        let tail_exact: f64 = p[p.len() - w..].iter().sum();
        prop_assert!(head_exact > tail_exact, "head {head_exact} vs tail {tail_exact}");

        let mut rng = FastRng::new(seed);
        let mut head = 0u64;
        const N: u64 = 2_000;
        for _ in 0..N {
            let k = sampler.sample(&mut rng);
            prop_assert!(k < range);
            if k < range / 2 { head += 1 }
        }
        let head_frac = head as f64 / N as f64;
        prop_assert!(
            (head_frac - head_exact).abs() < 0.05,
            "head fraction {head_frac} vs exact {head_exact}"
        );
    }

    /// Uniform sampling stays in range and is roughly balanced.
    #[test]
    fn uniform_sampler_properties(range in 2u64..512, seed in any::<u64>()) {
        let sampler = KeySampler::new(KeyDist::Uniform, range);
        let mut rng = FastRng::new(seed);
        let mut low = 0u64;
        for _ in 0..2_000 {
            let k = sampler.sample(&mut rng);
            prop_assert!(k < range);
            if k < range / 2 { low += 1 }
        }
        let frac = low as f64 / 2_000.0;
        let expect = (range / 2) as f64 / range as f64;
        prop_assert!((frac - expect).abs() < 0.1, "low fraction {frac} vs {expect}");
    }

    /// The analysis crate's birthday probabilities are proper probabilities
    /// and monotone in the number of writers.
    #[test]
    fn birthday_probabilities_are_sane(n in 8u64..4096, k in 2u64..16) {
        prop_assume!(2 * k < n);
        let ht = csds::analysis::birthday_hash_table(k, n);
        let ll = csds::analysis::birthday_linked_list(k, n);
        prop_assert!((0.0..=1.0).contains(&ht));
        prop_assert!((0.0..=1.0).contains(&ll));
        prop_assert!(csds::analysis::birthday_hash_table(k + 1, n) >= ht);
        // Adjacent-window conflicts are at least as likely as exact-slot
        // conflicts at equal k and n.
        prop_assert!(ll >= ht - 1e-12);
    }
}
