//! Cross-crate behavioral tests: delay injection really stalls lock
//! holders, elision really avoids holding locks, and the harness metrics
//! reflect both — the machinery behind the paper's §5.4 experiments.

use std::time::Duration;

use csds::harness::{run_map, AlgoKind, MapRunConfig};
use csds::metrics::DelayPolicy;

fn base(algo: AlgoKind, update_pct: u32, threads: usize) -> MapRunConfig {
    MapRunConfig::paper_default(algo, 256, update_pct, threads, Duration::from_millis(150))
}

#[test]
fn delayed_holders_inflate_lock_waits() {
    // Without delays.
    let calm = run_map(&base(AlgoKind::LazyList, 50, 4));
    // With the paper's §5.4 delay policy but aggressive (every 2nd CS).
    let mut cfg = base(AlgoKind::LazyList, 50, 4);
    cfg.delay = Some(DelayPolicy {
        every: 2,
        min_ns: 20_000,
        max_ns: 60_000,
        seed: 9,
    });
    let delayed = run_map(&cfg);
    assert!(delayed.stats.injected_delays > 0, "injector never fired");
    // Holding locks while stalled must increase observed waiting.
    assert!(
        delayed.wait_fraction() > calm.wait_fraction(),
        "delays did not inflate waits: {} vs {}",
        delayed.wait_fraction(),
        calm.wait_fraction()
    );
}

#[test]
fn elision_commits_dominate_and_fallbacks_are_rare() {
    // Paper Table 2: fallback fraction well under a few percent.
    let r = run_map(&base(AlgoKind::LazyListElided, 20, 4));
    assert!(r.stats.elide_commits > 0, "no speculative commits at all");
    assert!(
        r.fallback_fraction() < 0.25,
        "fallback fraction unexpectedly high: {}",
        r.fallback_fraction()
    );
}

#[test]
fn elision_reads_never_speculate() {
    // A read-only workload on an elided structure must not start any
    // transactions (reads are synchronization-free in these algorithms).
    let r = run_map(&base(AlgoKind::LazyListElided, 0, 2));
    assert_eq!(r.stats.elide_attempts, 0, "reads started transactions");
    assert_eq!(r.stats.restarts, 0);
}

#[test]
fn delayed_elided_sections_abort_as_interrupted_not_block() {
    // Delays inside speculative sections should surface as interrupt
    // aborts, not as lock waiting (the whole point of TSX elision in §5.4).
    let mut cfg = base(AlgoKind::LazyListElided, 50, 4);
    cfg.delay = Some(DelayPolicy {
        every: 2,
        min_ns: 150_000,
        max_ns: 300_000,
        seed: 5,
    });
    let r = run_map(&cfg);
    assert!(r.stats.injected_delays > 0);
    assert!(
        r.stats.elide_aborts_interrupt > 0,
        "no interrupt aborts despite 150-300us stalls inside transactions"
    );
}

#[test]
fn bst_never_waits_even_when_contended() {
    // Trylock-based BST-TK: Fig. 5's zero lock-wait column.
    let r = run_map(&base(AlgoKind::BstTk, 50, 8));
    assert_eq!(r.stats.lock_wait_ns, 0, "BST-TK waited for a lock");
    // It restarts instead (Fig. 6's non-zero BST column) — with 8 threads
    // on 256 elements at 50% updates some restarts are expected.
    assert!(r.total_ops > 0);
}

#[test]
fn hash_table_never_restarts() {
    // Per-bucket locking leaves nothing to validate: Fig. 6's zero column.
    let r = run_map(&base(AlgoKind::LazyHashTable, 50, 8));
    assert_eq!(r.stats.restarts, 0, "lazy hash table restarted");
}

#[test]
fn per_thread_fairness_is_reasonable() {
    // Fig. 4: per-thread throughput stddev is small relative to the mean.
    // On a loaded CI host scheduling skews this, so the bound is loose —
    // the paper's 0.2% needs dedicated cores.
    let r = run_map(&base(AlgoKind::LazyHashTable, 10, 4));
    let rel = r.per_thread_std() / r.per_thread_mean();
    assert!(rel < 1.0, "per-thread throughput wildly unfair: {rel}");
}
