//! The priority-queue family, exercised through the harness's `PqKind`
//! trait objects: sequential conformance against `BTreeMap::pop_first`
//! through both call paths, and recorded concurrent histories fed to the
//! priority-ordering checker — each in both optimistic-toggle states, so
//! the Pugh queue's lock paths are validated with and without the
//! workspace's version-validated fast paths underneath.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use csds::harness::PqKind;
use csds::lincheck::{check_pq_history, PqEvent, PqOpKind};
use csds::pq::PqHandle;

fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Drive one queue against a `BTreeMap` model: random push / pop-min /
/// peek-min over a small priority space, comparing every response.
fn model_check_pq(kind: PqKind, ops: usize, keys: u64, seed: u64) {
    let pq = kind.make();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = rng_stream(seed);
    for i in 0..ops {
        let key = rng() % keys;
        match rng() % 4 {
            0 | 1 => {
                let v = rng();
                // Set semantics: a duplicate push is rejected and the old
                // value stays — mirror that in the model (entry, not insert).
                let vacant = !model.contains_key(&key);
                if vacant {
                    model.insert(key, v);
                }
                assert_eq!(
                    pq.push(key, v),
                    vacant,
                    "{}: push {key} at op {i}",
                    kind.name()
                );
            }
            2 => assert_eq!(
                pq.pop_min(),
                model.pop_first(),
                "{}: pop_min at op {i}",
                kind.name()
            ),
            _ => assert_eq!(
                pq.peek_min(),
                model.first_key_value().map(|(&k, &v)| (k, v)),
                "{}: peek_min at op {i}",
                kind.name()
            ),
        }
        assert_eq!(pq.len(), model.len(), "{}: len at op {i}", kind.name());
    }
}

/// The same model comparison through a `PqHandle` session (guard reuse +
/// repin), cloning values out for the comparison.
fn model_check_pq_handle(kind: PqKind, ops: usize, keys: u64, seed: u64) {
    let pq = kind.make_guarded();
    let mut h = PqHandle::new(pq.as_ref());
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = rng_stream(seed);
    for i in 0..ops {
        let key = rng() % keys;
        match rng() % 4 {
            0 | 1 => {
                let v = rng();
                let vacant = !model.contains_key(&key);
                if vacant {
                    model.insert(key, v);
                }
                assert_eq!(
                    h.push(key, v),
                    vacant,
                    "{}: handle push {key} at op {i}",
                    kind.name()
                );
            }
            2 => assert_eq!(
                h.pop_min_cloned(),
                model.pop_first(),
                "{}: handle pop_min at op {i}",
                kind.name()
            ),
            _ => assert_eq!(
                h.peek_min().map(|(k, &v)| (k, v)),
                model.first_key_value().map(|(&k, &v)| (k, v)),
                "{}: handle peek_min at op {i}",
                kind.name()
            ),
        }
    }
    assert_eq!(h.ops(), ops as u64, "{}: session op count", kind.name());
    assert_eq!(h.stalled_ops(), 0, "{}: no repin stalls", kind.name());
}

/// Record a short concurrent push/pop/peek history on `kind`.
fn record_pq_history(
    kind: PqKind,
    threads: usize,
    ops_per_thread: usize,
    keys: u64,
    seed: u64,
) -> Vec<PqEvent> {
    let pq = Arc::new(kind.make());
    let origin = Instant::now();
    let barrier = Arc::new(Barrier::new(threads));
    let events = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for t in 0..threads {
        let pq = Arc::clone(&pq);
        let barrier = Arc::clone(&barrier);
        let events = Arc::clone(&events);
        handles.push(std::thread::spawn(move || {
            let mut rng = rng_stream(seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            let mut local = Vec::new();
            barrier.wait();
            for _ in 0..ops_per_thread {
                let key = rng() % keys;
                let arm = rng() % 3;
                let invoke = origin.elapsed().as_nanos() as u64;
                let kind = match arm {
                    0 => PqOpKind::Push {
                        ok: pq.push(key, key),
                    },
                    1 => PqOpKind::PopMin {
                        popped: pq.pop_min().map(|(k, _)| k),
                    },
                    _ => PqOpKind::PeekMin {
                        seen: pq.peek_min().map(|(k, _)| k),
                    },
                };
                let respond = origin.elapsed().as_nanos() as u64;
                local.push(PqEvent::new(key, kind, invoke, respond.max(invoke)));
            }
            events.lock().unwrap().extend(local);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(events).unwrap().into_inner().unwrap()
}

fn check_pq_kind(kind: PqKind, rounds: u64) {
    for round in 0..rounds {
        // 3 threads x 8 ops over 4 priorities: small enough for the
        // interval analysis, contended enough to race pop-min at the head.
        let history = record_pq_history(kind, 3, 8, 4, 0x5EED + round);
        let result = check_pq_history(&history);
        assert!(
            result.is_ok(),
            "{}: round {round} violates priority ordering: {result:?}\nhistory: {history:#?}",
            kind.name()
        );
    }
}

#[test]
fn both_queues_match_the_sequential_model_in_both_toggle_states() {
    for enabled in [true, false] {
        csds::sync::with_optimistic_fast_paths(enabled, || {
            for &kind in PqKind::all() {
                model_check_pq(kind, 3_000, 48, 0xBEAD ^ enabled as u64);
            }
        });
    }
}

#[test]
fn both_queues_match_the_sequential_model_through_handles_in_both_toggle_states() {
    for enabled in [true, false] {
        csds::sync::with_optimistic_fast_paths(enabled, || {
            for &kind in PqKind::all() {
                model_check_pq_handle(kind, 3_000, 48, 0xD1A1 ^ enabled as u64);
            }
        });
    }
}

#[test]
fn both_queues_pass_the_priority_ordering_checker() {
    for &kind in PqKind::all() {
        check_pq_kind(kind, 6);
    }
}

#[test]
fn both_queues_pass_the_checker_with_fast_paths_off() {
    // The pessimistic paths under the Pugh queue's locks (and the shared
    // skiplist machinery) get their own recorded histories.
    csds::sync::with_optimistic_fast_paths(false, || {
        for &kind in PqKind::all() {
            check_pq_kind(kind, 4);
        }
    });
}

#[test]
fn queues_and_maps_share_the_key_space_contract() {
    // The documented user key range applies to priorities too: extremes
    // round-trip, sentinels are rejected.
    use csds::core::MAX_USER_KEY;
    for &kind in PqKind::all() {
        let pq = kind.make();
        for k in [0, MAX_USER_KEY] {
            assert!(pq.push(k, 7), "{}: push {k:#x}", kind.name());
        }
        assert_eq!(pq.pop_min(), Some((0, 7)), "{}", kind.name());
        assert_eq!(pq.pop_min(), Some((MAX_USER_KEY, 7)), "{}", kind.name());
        for reserved in [u64::MAX, u64::MAX - 1] {
            let pq = kind.make();
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pq.push(reserved, 1);
            }))
            .is_err();
            assert!(
                panicked,
                "{}: reserved priority {reserved:#x} must be rejected",
                kind.name()
            );
        }
    }
}
