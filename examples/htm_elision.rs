//! HTM lock elision under multiprogramming — the paper's §5.4 scenario as
//! a runnable demo.
//!
//! Spawns far more threads than cores so lock holders get descheduled, then
//! runs the same skiplist workload twice: once with plain locks, once with
//! (emulated-TSX) elided locks, and prints the Table 2/3-style metrics:
//! fallback fraction and throughput ratio.
//!
//! ```text
//! cargo run --release --example htm_elision
//! ```

use std::time::Duration;

use csds::harness::{run_map, AlgoKind, MapRunConfig};

fn main() {
    const SIZE: usize = 1024;
    const THREADS: usize = 32; // paper: 8 threads per physical core
    const WINDOW: Duration = Duration::from_millis(600);

    println!(
        "multiprogramming: {THREADS} threads on {} core(s)\n",
        num_cpus()
    );

    for update_pct in [20u32, 50, 100] {
        let base = MapRunConfig::paper_default(
            AlgoKind::HerlihySkipList,
            SIZE,
            update_pct,
            THREADS,
            WINDOW,
        );
        let elided = MapRunConfig {
            algo: AlgoKind::HerlihySkipListElided,
            ..base.clone()
        };

        let r_base = run_map(&base);
        let r_elided = run_map(&elided);

        println!("skiplist, {update_pct}% updates:");
        println!(
            "  locks   : {:>8.3} Mops/s, wait fraction {:.3}%",
            r_base.throughput_mops(),
            100.0 * r_base.wait_fraction()
        );
        println!(
            "  elided  : {:>8.3} Mops/s, fallback fraction {:.4} ({} commits, {} fallbacks, {} interrupt-aborts)",
            r_elided.throughput_mops(),
            r_elided.fallback_fraction(),
            r_elided.stats.elide_commits,
            r_elided.stats.elide_fallbacks,
            r_elided.stats.elide_aborts_interrupt,
        );
        println!(
            "  speedup : {:.2}x (paper Table 3 reports the skip list gaining the most)\n",
            r_elided.throughput_mops() / r_base.throughput_mops().max(1e-12)
        );
    }
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
