//! A memcached-style key-value cache front-end — the workload that
//! motivates the paper's introduction (search structures inside Memcached,
//! RocksDB, LevelDB, ...).
//!
//! A hash table holds the hot set; requests follow a Zipfian popularity
//! distribution (as real caches do); a background "expiry" thread evicts
//! random keys, and an SLA monitor reports whether any request class was
//! delayed by concurrency — the practical-wait-freedom question asked the
//! way an operator would ask it.
//!
//! ```text
//! cargo run --release --example kv_cache
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csds::prelude::*;
use csds::workload::{FastRng, KeyDist, KeySampler};

const CACHE_CAPACITY: usize = 4096;
const FRONTEND_THREADS: usize = 4;
const RUN: Duration = Duration::from_millis(800);

fn main() {
    // Per-bucket-lock hash table at load factor 1: the paper's blocking HT.
    let cache: Arc<LazyHashTable<u64>> = Arc::new(LazyHashTable::with_capacity(CACHE_CAPACITY));
    for k in 0..CACHE_CAPACITY as u64 / 2 {
        cache.insert(k, k ^ 0xABCD);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Front-end request threads: 95% GET / 5% SET on a Zipfian hot set.
    for t in 0..FRONTEND_THREADS {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let sampler = KeySampler::new(KeyDist::Zipf { s: 0.8 }, CACHE_CAPACITY as u64);
            let mut rng = FastRng::new(0xCAFE + t as u64);
            let _ = csds::metrics::take_and_reset();
            let (mut hits, mut misses, mut sets) = (0u64, 0u64, 0u64);
            // One handle per front-end thread: GETs return references into
            // the live table (clone-free) and the session guard is reused
            // across requests.
            let mut session = cache.handle();
            while !stop.load(Ordering::Relaxed) {
                let key = sampler.sample(&mut rng);
                if rng.bounded(100) < 95 {
                    match session.get(key) {
                        Some(_) => hits += 1,
                        None => {
                            // Cache miss: fetch from "backend" and fill.
                            misses += 1;
                            session.insert(key, key ^ 0xABCD);
                        }
                    }
                } else {
                    session.remove(key);
                    session.insert(key, key ^ 0xABCD);
                    sets += 1;
                }
                csds::metrics::op_boundary();
            }
            (hits, misses, sets, csds::metrics::take_and_reset())
        }));
    }

    // Background eviction thread (TTL expiry stand-in).
    let evictor = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = FastRng::new(0xE71C);
            let mut evicted = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if cache.remove(rng.bounded(CACHE_CAPACITY as u64)).is_some() {
                    evicted += 1;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            evicted
        })
    };

    let start = Instant::now();
    std::thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();

    let mut total = (0u64, 0u64, 0u64);
    let mut merged = csds::metrics::StatsSnapshot::default();
    for h in handles {
        let (hits, misses, sets, stats) = h.join().unwrap();
        total.0 += hits;
        total.1 += misses;
        total.2 += sets;
        merged.merge(&stats);
    }
    let evicted = evictor.join().unwrap();

    let requests = total.0 + total.1 + total.2;
    println!("== kv-cache report ==");
    println!(
        "requests: {requests} ({:.2} Mops/s), hit rate {:.1}%, {} sets, {} evictions",
        requests as f64 / elapsed.as_secs_f64() / 1e6,
        100.0 * total.0 as f64 / (total.0 + total.1).max(1) as f64,
        total.2,
        evicted
    );
    println!(
        "SLA / practical wait-freedom: {:.5}% of requests waited for a lock (max {} ns), {:.5}% restarted",
        100.0 * merged.ops_waited as f64 / merged.ops.max(1) as f64,
        merged.max_wait_ns,
        100.0 * merged.restart_fraction(),
    );
    println!("cache size now: {}", cache.len());
}
