//! A memcached-style key-value cache front-end — the workload that
//! motivates the paper's introduction (search structures inside Memcached,
//! RocksDB, LevelDB, ...), now on the **elastic** sharded hash table.
//!
//! The cache starts tiny and resizes itself under live traffic, in three
//! phases:
//!
//! 1. **ramp** — a cold cache fills from its backend; the table grows
//!    shard by shard while requests keep flowing;
//! 2. **steady** — Zipfian traffic over the warm hot set;
//! 3. **expiry storm** — the evictor drains most of the population and the
//!    table shrinks back toward its floor.
//!
//! At exit the report includes the resize statistics: migrations, buckets
//! and entries moved, and old tables retired through EBR — all while the
//! SLA monitor checks whether any request class was delayed by
//! concurrency (the practical-wait-freedom question asked the way an
//! operator would ask it).
//!
//! ```text
//! cargo run --release --example kv_cache
//! ```

use csds_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use csds::prelude::*;
use csds::workload::{FastRng, KeyDist, KeySampler};

/// Hot-set size at steady state; the cache is *not* pre-sized for it.
const HOT_SET: usize = 8192;
const FRONTEND_THREADS: usize = 4;
const PHASE: Duration = Duration::from_millis(400);

/// Phase index shared between main and the workers (0 ramp, 1 steady,
/// 2 expiry storm).
type Phase = Arc<AtomicUsize>;

fn main() {
    // Start tiny: 64 buckets for what becomes a multi-thousand-entry hot
    // set. Growth is the elastic table's job, not the capacity planner's.
    let cache: Arc<ElasticHashTable<u64>> = Arc::new(ElasticHashTable::with_capacity(64));
    println!(
        "cold start: {} buckets across {} shards",
        cache.buckets(),
        cache.shards()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let phase: Phase = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();

    // Front-end request threads: 95% GET / 5% SET on a Zipfian hot set.
    for t in 0..FRONTEND_THREADS {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        let phase = Arc::clone(&phase);
        handles.push(std::thread::spawn(move || {
            let sampler = KeySampler::new(KeyDist::Zipf { s: 0.8 }, HOT_SET as u64);
            let mut rng = FastRng::new(0xCAFE + t as u64);
            let _ = csds::metrics::take_and_reset();
            let (mut hits, mut misses, mut sets) = (0u64, 0u64, 0u64);
            // One handle per front-end thread: GETs return references into
            // the live table (clone-free) and the session guard is reused
            // across requests — even across migrations of the node.
            let mut session = cache.handle();
            while !stop.load(Ordering::Relaxed) {
                let key = sampler.sample(&mut rng);
                // During the expiry storm the front-end stops refilling
                // misses, so eviction actually drains the population.
                let refill = phase.load(Ordering::Relaxed) != 2;
                if rng.bounded(100) < 95 {
                    match session.get(key) {
                        Some(_) => hits += 1,
                        None => {
                            misses += 1;
                            if refill {
                                // Cache miss: fetch from "backend" and fill.
                                session.insert(key, key ^ 0xABCD);
                            }
                        }
                    }
                } else if refill {
                    session.remove(key);
                    session.insert(key, key ^ 0xABCD);
                    sets += 1;
                }
                csds::metrics::op_boundary();
            }
            (hits, misses, sets, csds::metrics::take_and_reset())
        }));
    }

    // Background eviction thread (TTL expiry stand-in). Gentle during ramp
    // and steady phases; a storm during phase 2.
    let evictor = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        let phase = Arc::clone(&phase);
        std::thread::spawn(move || {
            let mut rng = FastRng::new(0xE71C);
            let mut evicted = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if phase.load(Ordering::Relaxed) == 2 {
                    // Storm: hammer random keys with no pause.
                    for _ in 0..64 {
                        if cache.remove(rng.bounded(HOT_SET as u64)).is_some() {
                            evicted += 1;
                        }
                    }
                } else {
                    if cache.remove(rng.bounded(HOT_SET as u64)).is_some() {
                        evicted += 1;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            evicted
        })
    };

    let start = Instant::now();
    for (idx, name) in [(0, "ramp"), (1, "steady"), (2, "expiry storm")] {
        phase.store(idx, Ordering::Relaxed);
        std::thread::sleep(PHASE);
        println!(
            "after {name:>12}: {:>6} buckets, ~{:>5} entries",
            cache.buckets(),
            cache.occupancy()
        );
    }
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();

    let mut total = (0u64, 0u64, 0u64);
    let mut merged = csds::metrics::StatsSnapshot::default();
    for h in handles {
        let (hits, misses, sets, stats) = h.join().unwrap();
        total.0 += hits;
        total.1 += misses;
        total.2 += sets;
        merged.merge(&stats);
    }
    let evicted = evictor.join().unwrap();

    let requests = total.0 + total.1 + total.2;
    println!("== kv-cache report ==");
    println!(
        "requests: {requests} ({:.2} Mops/s), hit rate {:.1}%, {} sets, {} evictions",
        requests as f64 / elapsed.as_secs_f64() / 1e6,
        100.0 * total.0 as f64 / (total.0 + total.1).max(1) as f64,
        total.2,
        evicted
    );
    println!(
        "SLA / practical wait-freedom: {:.5}% of requests waited for a lock (max {} ns), {:.5}% restarted",
        100.0 * merged.ops_waited as f64 / merged.ops.max(1) as f64,
        merged.max_wait_ns,
        100.0 * merged.restart_fraction(),
    );
    let rs = cache.resize_stats();
    println!(
        "resize: {} migrations ({} grows, {} shrinks), {} completed, {} buckets / {} entries moved, {} tables EBR-retired",
        rs.migrations_started,
        rs.grows,
        rs.shrinks,
        rs.migrations_completed,
        rs.buckets_moved,
        rs.entries_moved,
        rs.tables_retired,
    );
    println!(
        "cache size now: {} entries in {} buckets",
        cache.len(),
        cache.buckets()
    );
}
