//! Quickstart: build a blocking concurrent map, hammer it from several
//! threads, and read the fine-grained metrics that define *practical
//! wait-freedom*.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Instant;

use csds::prelude::*;
use csds::workload::{FastRng, KeyDist, KeySampler, Op, OpMix};

fn main() {
    const THREADS: usize = 4;
    const OPS_PER_THREAD: u64 = 200_000;
    const SIZE: u64 = 1024;

    // The paper's best blocking list: lazy list (wait-free reads,
    // lock-only-the-neighborhood updates).
    let map: Arc<LazyList<u64>> = Arc::new(LazyList::new());
    for k in 0..SIZE {
        map.insert(k * 2, k); // fill every other key: ~size elements
    }
    println!("prefilled lazy list with {} elements", map.len());

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let map = Arc::clone(&map);
        handles.push(std::thread::spawn(move || {
            let sampler = KeySampler::new(KeyDist::Uniform, SIZE * 2);
            let mix = OpMix::updates(10); // 10% updates, half insert/remove
            let mut rng = FastRng::new(t as u64 + 1);
            let _ = csds::metrics::take_and_reset();
            // One MapHandle per worker: the session pins once and reuses
            // its guard across all operations (fence-free repin), and
            // reads return references instead of clones.
            let mut session = map.handle();
            for _ in 0..OPS_PER_THREAD {
                let key = sampler.sample(&mut rng);
                match mix.sample(&mut rng) {
                    Op::Get => {
                        session.get(key);
                    }
                    Op::Insert => {
                        session.insert(key, key);
                    }
                    Op::Remove => {
                        session.remove(key);
                    }
                    Op::Upsert => {
                        session.upsert(key, key);
                    }
                    Op::Cas => {
                        session.compare_swap(key, &key, key);
                    }
                    Op::FetchAdd => {
                        session.rmw(key, &mut |cur| {
                            Some(cur.copied().unwrap_or(0).wrapping_add(1))
                        });
                    }
                }
                csds::metrics::op_boundary();
            }
            drop(session); // unpin before the thread idles
            csds::metrics::take_and_reset()
        }));
    }

    let mut merged = csds::metrics::StatsSnapshot::default();
    for h in handles {
        merged.merge(&h.join().unwrap());
    }
    let elapsed = start.elapsed();
    let total_ops = THREADS as u64 * OPS_PER_THREAD;

    println!(
        "{} ops across {} threads in {:?} = {:.2} Mops/s",
        total_ops,
        THREADS,
        elapsed,
        total_ops as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "practical wait-freedom check: {:.4}% of ops restarted, {:.4}% waited for a lock, max wait {} ns",
        100.0 * merged.restart_fraction(),
        100.0 * merged.ops_waited as f64 / merged.ops.max(1) as f64,
        merged.max_wait_ns
    );
    println!("final size: {}", map.len());
}
