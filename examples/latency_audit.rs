//! Latency audit: decide *for your workload* whether a blocking structure
//! is practically wait-free — the decision procedure the paper hands to
//! practitioners ("practitioners, which often have some knowledge about
//! their workloads, can use our work to decide when blocking
//! implementations are sufficient", §1).
//!
//! Runs a structure across increasingly hostile configurations and prints
//! a verdict per configuration based on the paper's thresholds (waits and
//! repeated restarts below 1%).
//!
//! ```text
//! cargo run --release --example latency_audit [list|skiplist|hashtable|bst]
//! ```

use std::time::Duration;

use csds::harness::{run_map, AlgoKind, MapRunConfig};

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "list".to_string());
    let algo = match which.as_str() {
        "list" => AlgoKind::LazyList,
        "skiplist" => AlgoKind::HerlihySkipList,
        "hashtable" => AlgoKind::LazyHashTable,
        "bst" => AlgoKind::BstTk,
        other => {
            eprintln!("unknown structure '{other}' (use list|skiplist|hashtable|bst)");
            std::process::exit(2);
        }
    };
    println!("auditing {} for practical wait-freedom\n", algo.name());
    println!(
        "{:>6} {:>5} {:>8} | {:>12} {:>12} {:>12} | verdict",
        "size", "upd%", "threads", "wait frac", "restart frac", "restart>3"
    );

    for (size, update_pct, threads) in [
        (8192usize, 1u32, 8usize), // comfortable: big structure, few updates
        (2048, 10, 16),            // the paper's default neighborhood
        (512, 25, 32),             // contended
        (64, 50, 32),              // hostile
        (16, 50, 32),              // the paper's own counterexample (sec. 5.3)
    ] {
        let cfg = MapRunConfig::paper_default(
            algo,
            size,
            update_pct,
            threads,
            Duration::from_millis(300),
        );
        let r = run_map(&cfg);
        let wait = r.wait_fraction();
        let restart = r.restart_fraction();
        let repeated = r.repeated_restart_fraction();
        // Paper-style SLA: <1% of time waiting and <1% of requests
        // repeatedly delayed.
        let verdict = if wait < 0.01 && repeated < 0.01 {
            "practically wait-free"
        } else if wait < 0.10 && repeated < 0.05 {
            "borderline"
        } else {
            "NOT practically wait-free"
        };
        println!(
            "{:>6} {:>5} {:>8} | {:>11.4}% {:>11.4}% {:>11.4}% | {}",
            size,
            update_pct,
            threads,
            100.0 * wait,
            100.0 * restart,
            100.0 * repeated,
            verdict
        );
    }
    println!(
        "\npaper sec. 5.3: only tiny structures under extreme update pressure break\n\
         the practical-wait-freedom envelope; everything realistic passes"
    );
}
