//! Latency audit: decide *for your workload* whether a blocking structure
//! is practically wait-free — the decision procedure the paper hands to
//! practitioners ("practitioners, which often have some knowledge about
//! their workloads, can use our work to decide when blocking
//! implementations are sufficient", §1).
//!
//! Runs a structure across increasingly hostile configurations and prints
//! a verdict per configuration based on the paper's thresholds (waits and
//! repeated restarts below 1%) — and drives the observability layer end to
//! end while doing it:
//!
//! * a **live observer thread** polls the process-wide seqlock metrics
//!   registry and the EBR health probe between configurations (the same
//!   feed `repro watch` renders), proving the audited numbers can be read
//!   *during* a run, not only from the post-run report;
//! * **event tracing** is armed for the audit and the merged timeline is
//!   exported as chrome://tracing JSON at exit.
//!
//! ```text
//! cargo run --release --example latency_audit \
//!     [list|skiplist|hashtable|bst] [--trace FILE]
//! ```

use csds::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use csds::harness::{run_map, AlgoKind, MapRunConfig};
use csds::metrics::{registry, trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "list".to_string());
    let trace_out = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            std::env::temp_dir()
                .join("latency_audit_trace.json")
                .display()
                .to_string()
        });
    let algo = match which.as_str() {
        "list" => AlgoKind::LazyList,
        "skiplist" => AlgoKind::HerlihySkipList,
        "hashtable" => AlgoKind::LazyHashTable,
        "bst" => AlgoKind::BstTk,
        other => {
            eprintln!("unknown structure '{other}' (use list|skiplist|hashtable|bst)");
            std::process::exit(2);
        }
    };
    println!("auditing {} for practical wait-freedom\n", algo.name());

    // Live observer: everything it prints comes from validated seqlock
    // reads of the registry and the EBR gauges — it never touches (or
    // perturbs) a worker thread.
    trace::set_tracing(true);
    let stop = Arc::new(AtomicBool::new(false));
    let observer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let reg = registry::global();
            let mut last_ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(500));
                let agg = reg.aggregate();
                let health = csds::ebr::health();
                println!(
                    "  [live] ops {:>10} (+{:>8}) | threads {:>2} | epoch {:>5} | \
                     garbage {:>6} items | contended locks {:>6} | restarts {:>6}",
                    agg.ops,
                    agg.ops.saturating_sub(last_ops),
                    reg.active_threads(),
                    health.global_epoch,
                    health.garbage_items,
                    agg.contended_acquires,
                    agg.restarts,
                );
                last_ops = agg.ops;
            }
        })
    };

    println!(
        "{:>6} {:>5} {:>8} | {:>12} {:>12} {:>12} | verdict",
        "size", "upd%", "threads", "wait frac", "restart frac", "restart>3"
    );

    for (size, update_pct, threads) in [
        (8192usize, 1u32, 8usize), // comfortable: big structure, few updates
        (2048, 10, 16),            // the paper's default neighborhood
        (512, 25, 32),             // contended
        (64, 50, 32),              // hostile
        (16, 50, 32),              // the paper's own counterexample (sec. 5.3)
    ] {
        let cfg = MapRunConfig::paper_default(
            algo,
            size,
            update_pct,
            threads,
            Duration::from_millis(300),
        );
        let r = run_map(&cfg);
        let wait = r.wait_fraction();
        let restart = r.restart_fraction();
        let repeated = r.repeated_restart_fraction();
        // Paper-style SLA: <1% of time waiting and <1% of requests
        // repeatedly delayed.
        let verdict = if wait < 0.01 && repeated < 0.01 {
            "practically wait-free"
        } else if wait < 0.10 && repeated < 0.05 {
            "borderline"
        } else {
            "NOT practically wait-free"
        };
        println!(
            "{:>6} {:>5} {:>8} | {:>11.4}% {:>11.4}% {:>11.4}% | {}",
            size,
            update_pct,
            threads,
            100.0 * wait,
            100.0 * restart,
            100.0 * repeated,
            verdict
        );
    }
    stop.store(true, Ordering::Relaxed);
    observer.join().expect("observer thread panicked");

    // Export the audit's event timeline (epoch advances, collections,
    // optimistic fallbacks under the hostile configurations, …).
    trace::set_tracing(false);
    let traces = trace::drain_all();
    let events: usize = traces.iter().map(|t| t.events.len()).sum();
    std::fs::write(&trace_out, trace::chrome_trace_json(&traces))
        .unwrap_or_else(|e| panic!("writing {trace_out}: {e}"));
    println!(
        "\ntrace: {events} events from {} threads -> {trace_out} \
         (load via chrome://tracing or ui.perfetto.dev)",
        traces.len()
    );

    println!(
        "paper sec. 5.3: only tiny structures under extreme update pressure break\n\
         the practical-wait-freedom envelope; everything realistic passes"
    );
}
