//! A multi-tenant key-value platform: thousands of keyspaces behind one
//! namespace-routed service front-end.
//!
//! Where `service_kv` serves a single map, this example drives the
//! tenant directory end to end:
//!
//! * **clients** draw `(namespace, key)` pairs from a Zipf-over-Zipf
//!   [`TenantSampler`] — a few tenants carry most of the traffic, and
//!   within each a few keys are hot — over ≥ 4096 namespaces;
//! * **tenant tables** are created lazily by the first operation that
//!   touches a namespace, shrink back toward a one-bucket floor while
//!   idle, and are **retired through EBR** once empty — the directory
//!   breathes with the traffic, so the long cold tail costs (almost)
//!   nothing;
//! * a small **per-namespace quota** makes the hottest tenants overflow,
//!   demonstrating admission-time `Busy` rejections that hand the
//!   operation back to the caller.
//!
//! ```text
//! cargo run --release --example namespace_kv [total_requests]
//! ```
//!
//! Defaults: 400k requests. CI smoke runs it with a small request count.

use std::sync::Arc;
use std::time::Instant;

use csds::core::hashtable::LazyHashTable;
use csds::core::GuardedMap;
use csds::prelude::*;
use csds::workload::{FastRng, OpMix, TenantSampler};

const CLIENTS: usize = 2;
const CORES: usize = 2;
const BATCH: usize = 32;
const NAMESPACES: u64 = 4096;
const KEYS_PER_TENANT: u64 = 1 << 12;
const QUOTA: usize = 256;

#[derive(Default)]
struct ClientReport {
    hits: u64,
    misses: u64,
    inserted: u64,
    removed: u64,
    quota_rejected: u64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let total: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(400_000);

    // The default namespace (id 0) is an ordinary map; every other
    // keyspace lives in the directory and is born lazily.
    let map: Arc<dyn GuardedMap<u64>> = Arc::new(LazyHashTable::with_capacity(64));
    let service = Service::start(
        map,
        ServiceConfig {
            cores: CORES,
            ring_capacity: 1024,
            max_batch: 64,
            namespace_quota: QUOTA,
        },
    );
    println!(
        "{NAMESPACES} namespaces x {KEYS_PER_TENANT} keys (zipf over zipf, s=0.8 both levels), \
         quota {QUOTA} entries/tenant; {CLIENTS} clients -> {CORES} core workers"
    );

    let per_client = (total / CLIENTS as u64).max(1);
    let start = Instant::now();
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let client = service.client();
        clients.push(std::thread::spawn(move || {
            run_client(client, c as u64, per_client)
        }));
    }
    let mut totals = ClientReport::default();
    for t in clients {
        let r = t.join().unwrap();
        totals.hits += r.hits;
        totals.misses += r.misses;
        totals.inserted += r.inserted;
        totals.removed += r.removed;
        totals.quota_rejected += r.quota_rejected;
    }
    let elapsed = start.elapsed();
    let counts = service.namespace_counts();
    let stats = service.shutdown();

    let requests = per_client * CLIENTS as u64;
    let executed = requests - totals.quota_rejected;
    println!("== namespace_kv report ==");
    println!(
        "requests: {requests} ({:.2} Mops/s end-to-end), hit rate {:.1}%, \
         {} inserted, {} removed, {} rejected at quota",
        requests as f64 / elapsed.as_secs_f64() / 1e6,
        100.0 * totals.hits as f64 / (totals.hits + totals.misses).max(1) as f64,
        totals.inserted,
        totals.removed,
        totals.quota_rejected,
    );
    println!(
        "namespaces: {} created, {} retired while serving, {} live at shutdown",
        counts.created, counts.retired, counts.live,
    );
    for (i, core) in stats.per_core.iter().enumerate() {
        println!(
            "core {i}: {} ops ({} tenant-routed) in {} batches (mean {:.1}), \
             owned {} namespaces at exit, latency p99 < {} ns",
            core.ops,
            core.ns_ops,
            core.batches,
            core.mean_batch(),
            core.owned_namespaces,
            core.latency_ns.quantile_upper_bound(0.99).unwrap_or(0),
        );
    }
    // The directory must demonstrably breathe: tenants were created, some
    // were retired while the service ran, and not everything died.
    assert!(
        counts.created > counts.retired && counts.retired > 0,
        "expected created > retired > 0, got {counts:?}"
    );
    assert_eq!(
        stats.aggregate().ops,
        executed,
        "every accepted request must execute exactly once"
    );
}

fn run_client(client: ServiceClient<u64>, id: u64, ops: u64) -> ClientReport {
    let sampler = TenantSampler::zipf_over_zipf(NAMESPACES, KEYS_PER_TENANT);
    let mix = OpMix::updates(40); // heavy churn: tenants empty out and revive
    let mut rng = FastRng::new(0x4A11 ^ (id + 1).wrapping_mul(0x9E3779B97F4A7C15));
    let mut report = ClientReport::default();
    let mut pending = Vec::with_capacity(BATCH);
    let mut submitted = 0u64;
    while submitted < ops {
        let n = BATCH.min((ops - submitted) as usize);
        for _ in 0..n {
            let (ns, key) = sampler.sample(&mut rng);
            let op = match mix.sample(&mut rng) {
                csds::workload::Op::Insert => OpKind::Insert(ns ^ key),
                csds::workload::Op::Remove => OpKind::Remove,
                _ => OpKind::Get,
            };
            // Quota overflow on a hot tenant is expected traffic shaping,
            // not an error: the op comes back untouched and the client
            // moves on (a real front-end would shed or retry later).
            match client.namespace(ns).try_submit(key, op) {
                Ok(c) => pending.push(c),
                Err(r) if r.reason == ServiceError::Busy => report.quota_rejected += 1,
                Err(r) => panic!("unexpected rejection: {:?}", r.reason),
            }
        }
        for f in pending.drain(..) {
            match f.wait().expect("accepted ops execute") {
                Reply::Got(Some(_)) => report.hits += 1,
                Reply::Got(None) => report.misses += 1,
                Reply::Inserted(true) => report.inserted += 1,
                Reply::Removed(Some(_)) => report.removed += 1,
                _ => {}
            }
        }
        submitted += n as u64;
    }
    report
}
