//! `task_scheduler` — a priority task scheduler over the lock-free
//! Lotan–Shavit queue: N producers enqueue jobs with priorities, M
//! workers drain in priority order.
//!
//! Priorities are composed as `priority << 32 | job_id` — the queue has
//! set semantics per key, so the unique job id in the low bits lets many
//! jobs share a priority class while the high bits still decide the pop
//! order. The run asserts:
//!
//! * **exact completion** — every job is executed exactly once (no job is
//!   lost to a pop race, none runs twice);
//! * **no priority inversion (single worker)** — with one worker and all
//!   jobs enqueued before draining starts, jobs complete in
//!   non-decreasing priority-class order.
//!
//! ```text
//! cargo run --release --example task_scheduler [JOBS_PER_PRODUCER]
//! ```

use csds::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use csds::prelude::*;

const PRODUCERS: u64 = 4;
const WORKERS: usize = 3;
const PRIORITY_CLASSES: u64 = 8;

/// `priority << 32 | job_id`: unique per job, ordered by priority class
/// first (smaller = more urgent).
fn job_key(priority: u64, job_id: u64) -> u64 {
    debug_assert!(priority < PRIORITY_CLASSES && job_id < (1 << 32));
    priority << 32 | job_id
}

fn priority_of(key: u64) -> u64 {
    key >> 32
}

/// Phase 1: concurrent producers and workers; count every completion.
fn concurrent_phase(per_producer: u64) {
    let total_jobs = PRODUCERS * per_producer;
    let pq: Arc<LotanShavitPq<u64>> = Arc::new(LotanShavitPq::new());
    let completed = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(PRODUCERS as usize + WORKERS));

    let mut threads = Vec::new();
    for p in 0..PRODUCERS {
        let pq = Arc::clone(&pq);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let mut h = PqHandle::new(&*pq);
            for i in 0..per_producer {
                let job_id = p * per_producer + i;
                // Spread jobs across priority classes; the id keeps every
                // key unique, so the push never collides.
                assert!(
                    h.push(job_key(job_id % PRIORITY_CLASSES, job_id), job_id),
                    "job keys are unique — push must succeed"
                );
            }
        }));
    }
    for _ in 0..WORKERS {
        let pq = Arc::clone(&pq);
        let completed = Arc::clone(&completed);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let mut h = PqHandle::new(&*pq);
            loop {
                match h.pop_min_cloned() {
                    Some((key, payload)) => {
                        // "Execute": the payload is the job id the producer
                        // stored, and it must match the key's low bits.
                        assert_eq!(key & 0xFFFF_FFFF, payload, "payload corrupted");
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    // Empty is inconclusive while producers may still be
                    // running; the global counter is the exit condition.
                    None => {
                        if completed.load(Ordering::Relaxed) >= total_jobs {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("scheduler thread panicked");
    }

    let done = completed.load(Ordering::Relaxed);
    assert_eq!(
        done, total_jobs,
        "exact completion: every job runs exactly once"
    );
    assert!(pq.pop_min().is_none(), "queue drained");
    println!(
        "concurrent phase: {PRODUCERS} producers x {per_producer} jobs, {WORKERS} workers \
         -> {done}/{total_jobs} jobs completed exactly once"
    );
}

/// Phase 2: everything enqueued up front, one worker drains — completions
/// must come out in non-decreasing priority-class order.
fn single_worker_phase(jobs: u64) {
    let pq: LotanShavitPq<u64> = LotanShavitPq::new();
    let mut h = PqHandle::new(&pq);
    // Sequential ids cycle through the classes, so consecutive pushes land
    // in different priority bands and the queue does the sorting.
    for job_id in 0..jobs {
        assert!(h.push(job_key(job_id % PRIORITY_CLASSES, job_id), job_id));
    }
    let mut last_priority = 0u64;
    let mut drained = 0u64;
    while let Some((key, _)) = h.pop_min_cloned() {
        let pri = priority_of(key);
        assert!(
            pri >= last_priority,
            "priority inversion: popped class {pri} after class {last_priority}"
        );
        last_priority = pri;
        drained += 1;
    }
    assert_eq!(drained, jobs, "single worker drains every job");
    println!(
        "single-worker phase: {drained} jobs drained across {PRIORITY_CLASSES} priority \
         classes in non-decreasing order"
    );
}

fn main() {
    let per_producer: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25_000);
    concurrent_phase(per_producer);
    single_worker_phase((per_producer * PRODUCERS).min(100_000));
    println!("task_scheduler: OK");
}
