//! `counter_service` — a page-view–style counter service: `FetchAdd`
//! requests over an [`ElasticHashTable`] behind the `csds_service`
//! front-end.
//!
//! This is the canonical *stateful service* scenario the compound
//! vocabulary exists for: every request is one atomic read-modify-write
//! round trip (no get-then-insert races, no client-side retry loops), the
//! table grows under the live key population, and the per-core service
//! histograms report end-to-end latency.
//!
//! ```text
//! cargo run --release --example counter_service [TOTAL_OPS]
//! ```

use std::sync::Arc;

use csds::prelude::*;
use csds::workload::{FastRng, KeyDist, KeySampler};

const CLIENTS: usize = 4;
const KEYS: u64 = 4096;

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let per_client = total / CLIENTS as u64;

    // Cold-start small: the elastic table grows as counters appear.
    let map: Arc<ElasticHashTable<u64>> = Arc::new(ElasticHashTable::with_config(ElasticConfig {
        shards: 8,
        initial_buckets: 64,
        min_buckets: 64,
        ..ElasticConfig::default()
    }));
    let service = Service::start(
        Arc::clone(&map) as Arc<dyn GuardedMap<u64>>,
        ServiceConfig {
            cores: 2,
            ..ServiceConfig::default()
        },
    );

    println!(
        "counter_service: {CLIENTS} clients x {per_client} FetchAdd ops \
         over {KEYS} zipf keys, elastic table cold-starting at 64 buckets"
    );

    let start = std::time::Instant::now();
    let mut clients = Vec::new();
    for c in 0..CLIENTS as u64 {
        let client = service.client();
        clients.push(std::thread::spawn(move || {
            // Zipf-skewed counters: a few pages get most of the views.
            let sampler = KeySampler::new(KeyDist::PAPER_ZIPF, KEYS);
            let mut rng = FastRng::new(0xC0_04 + c);
            let mut max_seen = 0u64;
            let mut pending = Vec::with_capacity(256);
            let mut sent = 0u64;
            while sent < per_client {
                let n = 256.min((per_client - sent) as usize);
                for _ in 0..n {
                    let key = sampler.sample(&mut rng);
                    pending.push(client.fetch_add(key, 1).expect("service running"));
                }
                for f in pending.drain(..) {
                    let reading = f.wait().expect("accepted ops execute");
                    max_seen = max_seen.max(reading.added().expect("FetchAdd replies Added"));
                }
                sent += n as u64;
            }
            max_seen
        }));
    }
    let max_reading = clients
        .into_iter()
        .map(|c| c.join().expect("client panicked"))
        .max()
        .unwrap_or(0);
    let elapsed = start.elapsed();

    // Every accepted bump must have landed exactly once.
    let mut h = MapHandle::new(&*map);
    let sum: u64 = (0..KEYS).map(|k| h.get(k).copied().unwrap_or(0)).sum();
    drop(h);
    assert_eq!(
        sum,
        per_client * CLIENTS as u64,
        "counter total must equal the number of accepted FetchAdds"
    );

    let stats = service.shutdown();
    let agg = stats.aggregate();
    let resize = map.resize_stats();
    println!(
        "  {} ops in {:.2?} ({:.2} Mops/s end-to-end), hottest counter at {max_reading}",
        agg.ops,
        elapsed,
        agg.ops as f64 / elapsed.as_secs_f64() / 1e6,
    );
    println!(
        "  latency p50 < {:?} ns, p99 < {:?} ns; mean batch {:.1}, adaptive target peaked at {}",
        agg.latency_ns.quantile_upper_bound(0.5).unwrap_or(0),
        agg.latency_ns.quantile_upper_bound(0.99).unwrap_or(0),
        agg.mean_batch(),
        agg.batch_target_max,
    );
    println!(
        "  elastic table: {} buckets now, {} grow migrations, {} buckets moved mid-traffic",
        map.buckets(),
        resize.grows,
        resize.buckets_moved,
    );
    println!("  counter sum checks out: {sum} == {}", agg.ops);
}
