//! A key-value service: open-loop clients, an async core-worker pool, and
//! the elastic hash table breathing underneath — the ROADMAP's service
//! scenario end to end.
//!
//! Where `kv_cache` drives the elastic table from closed-loop front-end
//! threads, this example puts the `csds_service` front-end in between:
//!
//! * **clients** submit pipelined batches through [`ServiceClient`],
//!   paced by an [`OpenLoopSchedule`] (Poisson arrivals) — requests fire on
//!   a clock, like traffic from independent users, and the example reports
//!   how far execution fell behind the arrival schedule;
//! * **core workers** (a fixed pool) drain bounded submission rings, one
//!   `MapHandle` session per core, one guard re-validation per batch;
//! * the **workload** is a [`ChurnSchedule`] — the population grows, holds,
//!   and drains, forcing the elastic table through migrations while the
//!   service is live.
//!
//! ```text
//! cargo run --release --example service_kv [total_requests] [rate_per_client]
//! ```
//!
//! Defaults: 400k requests at 1.5M/s per client. CI smoke runs it with a
//! small request count.

use std::sync::Arc;
use std::time::{Duration, Instant};

use csds::elastic::ElasticHashTable;
use csds::prelude::*;
use csds::workload::{ChurnSchedule, FastRng, KeyDist, KeySampler, Op, OpMix, OpenLoopSchedule};

const CLIENTS: usize = 2;
const CORES: usize = 2;
const BATCH: usize = 32;
const KEY_RANGE: u64 = 1 << 14;

struct ClientReport {
    hits: u64,
    misses: u64,
    inserted: u64,
    removed: u64,
    max_lag: Duration,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let total: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(400_000);
    let rate_per_client: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_500_000.0);

    // Cold start tiny; growth is the elastic table's job. The service is
    // generic over the map, so the concrete handle keeps resize_stats()
    // reachable through `service.map()`.
    let cache = Arc::new(ElasticHashTable::<u64>::with_capacity(64));
    println!(
        "cold start: {} buckets across {} shards; {CLIENTS} clients -> {CORES} core workers",
        cache.buckets(),
        cache.shards()
    );
    let service = Service::start(
        Arc::clone(&cache),
        ServiceConfig {
            cores: CORES,
            ring_capacity: 1024,
            max_batch: 64,
            ..ServiceConfig::default()
        },
    );

    let per_client = (total / CLIENTS as u64).max(1);
    // Grow / steady / shrink the population while serving (~1.7 cycles per
    // client); shrink gets extra attempts because successful removes thin
    // out as the population drains.
    let schedule = ChurnSchedule::new(per_client / 6, per_client / 12, per_client / 4);
    let pace = OpenLoopSchedule::poisson(rate_per_client);
    let steady = OpMix::updates(20);

    let start = Instant::now();
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let client = service.client();
        clients.push(std::thread::spawn(move || {
            run_client(client, c as u64, per_client, schedule, steady, pace)
        }));
    }
    let mut totals = ClientReport {
        hits: 0,
        misses: 0,
        inserted: 0,
        removed: 0,
        max_lag: Duration::ZERO,
    };
    for t in clients {
        let r = t.join().unwrap();
        totals.hits += r.hits;
        totals.misses += r.misses;
        totals.inserted += r.inserted;
        totals.removed += r.removed;
        totals.max_lag = totals.max_lag.max(r.max_lag);
    }
    let elapsed = start.elapsed();
    let stats = service.shutdown();

    let requests = per_client * CLIENTS as u64;
    println!("== service_kv report ==");
    println!(
        "requests: {requests} ({:.2} Mops/s end-to-end), hit rate {:.1}%, {} inserted, {} removed",
        requests as f64 / elapsed.as_secs_f64() / 1e6,
        100.0 * totals.hits as f64 / (totals.hits + totals.misses).max(1) as f64,
        totals.inserted,
        totals.removed,
    );
    println!(
        "open loop: offered {:.2} Mops/s total, worst schedule lag {:.2} ms",
        rate_per_client * CLIENTS as f64 / 1e6,
        totals.max_lag.as_secs_f64() * 1e3,
    );
    for (i, core) in stats.per_core.iter().enumerate() {
        println!(
            "core {i}: {} ops in {} batches (mean {:.1}, max {}), queue depth max {}, \
             latency p50 < {} ns, p99 < {} ns",
            core.ops,
            core.batches,
            core.mean_batch(),
            core.max_batch,
            core.max_depth,
            core.latency_ns.quantile_upper_bound(0.50).unwrap_or(0),
            core.latency_ns.quantile_upper_bound(0.99).unwrap_or(0),
        );
    }
    let rs = cache.resize_stats();
    println!(
        "resize under service load: {} migrations ({} grows, {} shrinks), {} buckets / {} entries moved, {} tables EBR-retired",
        rs.migrations_started, rs.grows, rs.shrinks, rs.buckets_moved, rs.entries_moved, rs.tables_retired,
    );
    println!(
        "cache now: {} entries in {} buckets",
        cache.len(),
        cache.buckets()
    );
    assert_eq!(
        stats.aggregate().ops,
        requests,
        "every accepted request must execute exactly once"
    );
}

fn run_client(
    client: ServiceClient<u64>,
    id: u64,
    ops: u64,
    schedule: ChurnSchedule,
    steady: OpMix,
    pace: OpenLoopSchedule,
) -> ClientReport {
    let sampler = KeySampler::new(KeyDist::Uniform, KEY_RANGE);
    let mut rng = FastRng::new(0x5EB5 ^ (id + 1).wrapping_mul(0x9E3779B97F4A7C15));
    let mut report = ClientReport {
        hits: 0,
        misses: 0,
        inserted: 0,
        removed: 0,
        max_lag: Duration::ZERO,
    };
    let mut batch = Vec::with_capacity(BATCH);
    let mut submitted = 0u64;
    let mut sched_ns = 0u64;
    let start = Instant::now();
    while submitted < ops {
        let n = BATCH.min((ops - submitted) as usize);
        for i in 0..n as u64 {
            let key = sampler.sample(&mut rng);
            let op = match schedule.sample(submitted + i, steady, &mut rng) {
                Op::Get => OpKind::Get,
                Op::Insert => OpKind::Insert(key ^ 0xABCD),
                Op::Remove => OpKind::Remove,
                Op::Upsert => OpKind::Upsert(key ^ 0xABCD),
                Op::Cas => OpKind::CompareSwap {
                    expected: key ^ 0xABCD,
                    new: key ^ 0xABCD,
                },
                Op::FetchAdd => OpKind::FetchAdd(1),
            };
            batch.push((key, op));
            sched_ns += pace.next_gap_ns(&mut rng);
        }
        // Open-loop pacing: the batch's last op is scheduled at sched_ns.
        // Ahead of schedule -> wait; behind -> record the lag and keep
        // going (the queue, not the client, absorbs the burst).
        let now = start.elapsed();
        let sched = Duration::from_nanos(sched_ns);
        if now < sched {
            std::thread::sleep(sched - now);
        } else {
            report.max_lag = report.max_lag.max(now - sched);
        }
        let pending = client.submit_batch(batch.drain(..)).expect("service live");
        for f in pending {
            match f.wait().expect("accepted ops execute") {
                Reply::Got(Some(_)) => report.hits += 1,
                Reply::Got(None) => report.misses += 1,
                Reply::Inserted(true) => report.inserted += 1,
                Reply::Removed(Some(_)) => report.removed += 1,
                _ => {}
            }
        }
        submitted += n as u64;
    }
    report
}
