//! # csds — concurrent search data structures, practically wait-free
//!
//! Facade crate for the workspace reproducing *"Concurrent Search Data
//! Structures Can Be Blocking and Practically Wait-Free"* (David &
//! Guerraoui, SPAA 2016). Re-exports every sub-crate:
//!
//! * [`core`] — the data structures (blocking / lock-free /
//!   wait-free lists, skip lists, hash tables, BSTs, queues, stacks);
//! * [`elastic`] — the sharded, dynamically-resizing hash table
//!   (incremental cooperative migration, EBR-retired tables);
//! * [`sync`] — spin locks (TAS, TTAS, ticket, MCS, OPTIK);
//! * [`ebr`] — epoch-based memory reclamation;
//! * [`htm`] — emulated HTM lock elision (TSX substitute);
//! * [`service`] — the async request front-end (core worker pool, bounded
//!   submission rings, std-only futures, multi-tenant namespaces with lazy
//!   creation and shrink-to-zero) over any [`GuardedMap`](core::GuardedMap);
//! * [`pq`] — the second structure kind: concurrent priority queues
//!   (blocking Pugh and lock-free Lotan–Shavit) over the skiplist
//!   substrate;
//! * [`metrics`] — fine-grained instrumentation;
//! * [`workload`] — key distributions and operation mixes;
//! * [`analysis`] — the birthday-paradox conflict model;
//! * [`harness`] — the experiment runner behind `repro`;
//! * [`lincheck`] — linearizability checking for tests.
//!
//! ```
//! use csds::prelude::*;
//!
//! let map: LazyList<&str> = LazyList::new();
//! // Pin-per-op trait path (convenient; clones values out of reads):
//! assert!(map.insert(7, "seven"));
//! assert_eq!(map.get(7), Some("seven"));
//! // Per-thread handle path (guard reuse + clone-free reads — hot loops):
//! let mut h = map.handle();
//! assert_eq!(h.get(7), Some(&"seven"));
//! assert_eq!(h.remove(7), Some("seven"));
//! ```

pub use csds_analysis as analysis;
pub use csds_core as core;
pub use csds_ebr as ebr;
pub use csds_elastic as elastic;
pub use csds_harness as harness;
pub use csds_htm as htm;
pub use csds_lincheck as lincheck;
pub use csds_metrics as metrics;
pub use csds_pq as pq;
pub use csds_service as service;
pub use csds_sync as sync;
pub use csds_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use csds_core::bst::BstTk;
    pub use csds_core::hashtable::{
        CouplingHashTable, CowHashTable, LazyHashTable, LockFreeHashTable, WaitFreeHashTable,
    };
    pub use csds_core::list::{CouplingList, HarrisList, LazyList, WaitFreeList};
    pub use csds_core::queuestack::{LockedStack, MsQueue, TreiberStack, TwoLockQueue};
    pub use csds_core::skiplist::{HerlihySkipList, LockFreeSkipList, PughSkipList};
    pub use csds_core::{
        CasOutcome, ConcurrentMap, ConcurrentPool, GuardedMap, GuardedPool, MapHandle, PoolHandle,
        RmwFn, RmwOutcome, SyncMode, MAX_USER_KEY,
    };
    pub use csds_elastic::{ElasticConfig, ElasticHashTable};
    pub use csds_pq::{ConcurrentPq, GuardedPq, LotanShavitPq, PqHandle, PughPq};
    pub use csds_service::{
        block_on, FetchAddValue, NamespaceClient, NamespaceCounts, NamespaceId, OpKind, Reply,
        Service, ServiceClient, ServiceConfig, ServiceError, DEFAULT_NAMESPACE,
    };
}
